package sim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/combinat"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/params"
	"repro/internal/rebuild"
)

// RepairDistribution selects how rebuild and restripe durations are drawn.
type RepairDistribution int

const (
	// RepairExponential matches the Markov models' memoryless repairs.
	RepairExponential RepairDistribution = iota + 1
	// RepairDeterministic uses the mean duration exactly — closer to a
	// real system whose rebuild time is data volume over bandwidth. The
	// gap between the two quantifies one of the paper's modelling
	// simplifications.
	RepairDeterministic
)

// Scenario fixes the simulated system. Rates are per hour.
type Scenario struct {
	// N nodes of D drives; redundancy sets of size R with inter-node
	// fault tolerance T. ParityDrives is the internal RAID parity count m
	// (0 = no internal RAID).
	N, R, D, T, ParityDrives int
	// LambdaN, LambdaD are node and per-drive failure rates.
	LambdaN, LambdaD float64
	// MuN, MuD are node and (no-internal-RAID) drive rebuild rates;
	// MuRestripe is the internal-RAID restripe rate.
	MuN, MuD, MuRestripe float64
	// CHER is C·HER, expected hard errors per full-drive read.
	CHER float64
	// Repair selects the repair-time distribution.
	Repair RepairDistribution
	// NodeFailureShape and DriveFailureShape are Weibull shape parameters
	// for component lifetimes (0 or 1 = exponential, the models'
	// assumption; >1 = wear-out, <1 = infant mortality). Mean lifetimes
	// stay 1/λ regardless of shape. Components are born fresh at t=0 and
	// at every replenishment, so birth-time draws are exact.
	NodeFailureShape, DriveFailureShape float64
	// ShockRate and ShockSize model correlated failures the paper's
	// independence assumption excludes: shocks arrive as a Poisson
	// process of rate ShockRate per hour and instantly fail ShockSize
	// uniformly chosen live nodes (a shared power feed, a rack event).
	// Zero disables shocks.
	ShockRate float64
	ShockSize int
}

// ScenarioFromConfig derives a simulation scenario from the analytic
// parameter set and a redundancy configuration, using the same rebuild-rate
// model the analysis uses.
func ScenarioFromConfig(p params.Parameters, cfg core.Config, repair RepairDistribution) (Scenario, error) {
	if err := p.Validate(); err != nil {
		return Scenario{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Scenario{}, err
	}
	rates := rebuild.Compute(p, cfg.NodeFaultTolerance)
	return Scenario{
		N:            p.NodeSetSize,
		R:            p.RedundancySetSize,
		D:            p.DrivesPerNode,
		T:            cfg.NodeFaultTolerance,
		ParityDrives: cfg.Internal.ParityDrives(),
		LambdaN:      p.NodeFailureRate(),
		LambdaD:      p.DriveFailureRate(),
		MuN:          rates.NodeRebuild,
		MuD:          rates.DriveRebuild,
		MuRestripe:   rates.Restripe,
		CHER:         p.CHER(),
		Repair:       repair,
	}, nil
}

// Validate reports the first problem with the scenario.
func (sc Scenario) Validate() error {
	switch {
	case sc.N < 2 || sc.D < 1:
		return fmt.Errorf("sim: invalid geometry N=%d D=%d", sc.N, sc.D)
	case sc.R < 2 || sc.R > sc.N:
		return fmt.Errorf("sim: redundancy set size %d invalid for N=%d", sc.R, sc.N)
	case sc.T < 1 || sc.T >= sc.R:
		return fmt.Errorf("sim: fault tolerance %d invalid for R=%d", sc.T, sc.R)
	case sc.ParityDrives < 0 || sc.ParityDrives > 2:
		return fmt.Errorf("sim: parity drives %d out of range", sc.ParityDrives)
	case sc.ParityDrives >= sc.D && sc.ParityDrives > 0:
		return fmt.Errorf("sim: %d drives cannot form RAID with %d parity", sc.D, sc.ParityDrives)
	case sc.LambdaN <= 0 || sc.LambdaD <= 0 || sc.MuN <= 0 || sc.MuD <= 0:
		return fmt.Errorf("sim: rates must be positive")
	case sc.ParityDrives > 0 && sc.MuRestripe <= 0:
		return fmt.Errorf("sim: restripe rate must be positive with internal RAID")
	case sc.Repair != RepairExponential && sc.Repair != RepairDeterministic:
		return fmt.Errorf("sim: unknown repair distribution %d", sc.Repair)
	case sc.CHER < 0:
		return fmt.Errorf("sim: negative CHER")
	case sc.NodeFailureShape < 0 || sc.DriveFailureShape < 0:
		return fmt.Errorf("sim: negative Weibull shape")
	case sc.NodeFailureShape > 0 && sc.NodeFailureShape < 0.2,
		sc.DriveFailureShape > 0 && sc.DriveFailureShape < 0.2:
		return fmt.Errorf("sim: Weibull shape below 0.2 is numerically pathological")
	case sc.ShockRate < 0:
		return fmt.Errorf("sim: negative shock rate")
	case sc.ShockRate > 0 && (sc.ShockSize < 1 || sc.ShockSize > sc.N):
		return fmt.Errorf("sim: shock size %d out of [1, N]", sc.ShockSize)
	}
	return nil
}

// failureRef is one outstanding failure, in arrival order.
type failureRef struct {
	isNode bool
	node   int
	drive  int // meaningful when !isNode
}

// desNode is a node's live state.
type desNode struct {
	up      bool
	seq     uint64 // validates pending node-failure events
	drives  []desDrive
	rebuild uint64 // validates the pending node-rebuild event

	// Internal RAID state.
	liveDrives int
	degraded   int // failed drives awaiting restripe
	restriping bool
	restripe   uint64 // validates the pending restripe event
}

type desDrive struct {
	up  bool
	seq uint64
}

// LossCause classifies what ended a mission.
type LossCause int

const (
	// LossNone means the mission has not (yet) lost data.
	LossNone LossCause = iota
	// LossTolerance means more distinct nodes failed concurrently than
	// the inter-node fault tolerance covers.
	LossTolerance
	// LossCriticalUE means an uncorrectable read error struck during a
	// critical rebuild (the Section 5.2.2 h_α path).
	LossCriticalUE
	// LossRestripeUE means an uncorrectable read error struck during a
	// critical internal-RAID restripe (the Section 5.2.1 k_t path).
	LossRestripeUE

	lossCauseCount
)

// String returns the snake_case tag used in metrics and event streams.
func (c LossCause) String() string {
	switch c {
	case LossNone:
		return "none"
	case LossTolerance:
		return "tolerance_exceeded"
	case LossCriticalUE:
		return "critical_rebuild_ue"
	case LossRestripeUE:
		return "restripe_ue"
	default:
		return fmt.Sprintf("LossCause(%d)", int(c))
	}
}

// des is one running trajectory.
type des struct {
	sc          Scenario
	rng         *rand.Rand
	q           scheduler
	now         float64
	seq         uint64
	nodes       []desNode
	outstanding []failureRef
	lost        bool
	cause       LossCause
	events      int

	// Instrumentation: m is nil when disabled; per-event tallies stay in
	// the local arrays and flush into the atomic registry once per
	// mission, keeping the instrumented hot loop allocation- and
	// contention-free.
	m         *Metrics
	recs      *desRecorders
	kindCount [numEventKinds]int64

	// onEvent, when non-nil, observes every popped event in dispatch
	// order — the cross-engine harness's sequence probe.
	onEvent func(event)
}

// desRecorders batches the per-repair histogram samples locally; Flush
// resets them, so one set is reused across an entire Monte Carlo run
// instead of being reallocated per mission.
type desRecorders struct {
	node, drive, restripe *obs.HistogramRecorder
}

func newDESRecorders(m *Metrics) *desRecorders {
	return &desRecorders{
		node:     m.NodeRebuildHours.Recorder(),
		drive:    m.DriveRebuildHours.Recorder(),
		restripe: m.RestripeHours.Recorder(),
	}
}

// LossResult describes one simulated run.
type LossResult struct {
	// Time is the simulated time to the data-loss event, in hours.
	Time float64
	// Events is the number of events processed.
	Events int
	// Cause classifies the data-loss event.
	Cause LossCause
}

// RunUntilLoss simulates one trajectory from a fresh system to its first
// data-loss event. maxEvents bounds the run; exceeding it returns an error
// (the scenario is too reliable for naive simulation — use the biased
// estimator instead).
func RunUntilLoss(sc Scenario, rng *rand.Rand, maxEvents int) (LossResult, error) {
	return runUntilLoss(sc, rng, maxEvents, nil, nil)
}

// RunUntilLossEngine is RunUntilLoss on an explicit scheduler engine.
// Every engine pops the same event total order, so the trajectory — every
// event, every RNG draw, the result — is bit-identical across engines;
// the cross-engine harness enforces exactly that.
func RunUntilLossEngine(sc Scenario, rng *rand.Rand, maxEvents int, engine Engine) (LossResult, error) {
	if err := engine.validate(); err != nil {
		return LossResult{}, err
	}
	return runUntilLossEngine(sc, rng, maxEvents, nil, nil, engine, nil)
}

func runUntilLoss(sc Scenario, rng *rand.Rand, maxEvents int, m *Metrics, recs *desRecorders) (LossResult, error) {
	return runUntilLossEngine(sc, rng, maxEvents, m, recs, EngineHeap, nil)
}

func runUntilLossEngine(sc Scenario, rng *rand.Rand, maxEvents int, m *Metrics, recs *desRecorders, engine Engine, onEvent func(event)) (LossResult, error) {
	if err := sc.Validate(); err != nil {
		return LossResult{}, err
	}
	d := &des{sc: sc, rng: rng, m: m, recs: recs, onEvent: onEvent}
	d.q = newScheduler(engine)
	if m != nil && recs == nil {
		d.recs = newDESRecorders(m)
	}
	d.nodes = make([]desNode, sc.N)
	for i := range d.nodes {
		d.freshNode(i)
	}
	if sc.ShockRate > 0 {
		d.q.schedule(event{at: d.exp(sc.ShockRate), kind: evShock})
	}
	for !d.lost {
		if d.events >= maxEvents {
			d.flushMetrics()
			return LossResult{}, fmt.Errorf("sim: no data loss within %d events (t=%.3g h); use the biased estimator", maxEvents, d.now)
		}
		if d.q.Len() == 0 {
			return LossResult{}, fmt.Errorf("sim: event queue drained unexpectedly")
		}
		e := d.q.next()
		d.now = e.at
		d.events++
		if d.m != nil {
			d.kindCount[e.kind]++
		}
		if d.onEvent != nil {
			d.onEvent(e)
		}
		d.dispatch(e)
	}
	d.flushMetrics()
	return LossResult{Time: d.now, Events: d.events, Cause: d.cause}, nil
}

// flushMetrics folds the mission-local tallies into the shared registry.
func (d *des) flushMetrics() {
	if d.m == nil {
		return
	}
	d.m.Events.Add(int64(d.events))
	for k := evNodeFail; k < numEventKinds; k++ {
		if c := d.kindCount[k]; c != 0 {
			d.m.byKind[k].Add(c)
		}
	}
	d.recs.node.Flush()
	d.recs.drive.Flush()
	d.recs.restripe.Flush()
}

// freshNode (re)initializes node i as a brand-new spare and schedules its
// failure processes. Replenishment keeps the population constant, matching
// the models' fixed N and the paper's spare-node provisioning.
func (d *des) freshNode(i int) {
	n := &d.nodes[i]
	n.up = true
	n.seq++
	n.restriping = false
	n.degraded = 0
	n.liveDrives = d.sc.D
	if n.drives == nil {
		n.drives = make([]desDrive, d.sc.D)
	}
	d.scheduleNodeFailure(i)
	for j := range n.drives {
		n.drives[j].up = true
		n.drives[j].seq++
		d.scheduleDriveFailure(i, j)
	}
}

func (d *des) exp(rate float64) float64 { return d.rng.ExpFloat64() / rate }

func (d *des) repairTime(rate float64) float64 {
	if d.sc.Repair == RepairDeterministic {
		return 1 / rate
	}
	return d.exp(rate)
}

// lifetime draws a component time-to-failure with mean 1/rate: exponential
// for shape 0 or 1, Weibull otherwise (scale chosen so the mean is 1/rate).
func (d *des) lifetime(rate, shape float64) float64 {
	return dist.Lifetime{Mean: 1 / rate, Shape: shape}.Sample(d.rng)
}

func (d *des) scheduleNodeFailure(i int) {
	ttf := d.lifetime(d.sc.LambdaN, d.sc.NodeFailureShape)
	d.q.schedule(event{at: d.now + ttf, kind: evNodeFail, node: i, seq: d.nodes[i].seq})
}

func (d *des) scheduleDriveFailure(i, j int) {
	ttf := d.lifetime(d.sc.LambdaD, d.sc.DriveFailureShape)
	d.q.schedule(event{at: d.now + ttf, kind: evDriveFail, node: i, drive: j, seq: d.nodes[i].drives[j].seq})
}

// affectedNodes counts distinct nodes with outstanding failures — the
// maximum number of erasures any single redundancy set can currently have
// (each set holds at most one element per node).
func (d *des) affectedNodes() int {
	seen := make(map[int]bool, len(d.outstanding))
	for _, f := range d.outstanding {
		seen[f.node] = true
	}
	return len(seen)
}

// failureWord renders the outstanding failures (arrival order) as the
// h-subscript word of Section 5.2.2.
func (d *des) failureWord() combinat.Word {
	w := make(combinat.Word, len(d.outstanding))
	for i, f := range d.outstanding {
		if f.isNode {
			w[i] = combinat.NodeFailure
		} else {
			w[i] = combinat.DriveFailure
		}
	}
	return w
}

// dispatch applies one event if it is still valid.
func (d *des) dispatch(e event) {
	n := &d.nodes[e.node]
	switch e.kind {
	case evNodeFail:
		if !n.up || e.seq != n.seq {
			return
		}
		d.nodeLevelFailure(e.node)
	case evDriveFail:
		if !n.up || e.seq != n.drives[e.drive].seq || !n.drives[e.drive].up {
			return
		}
		if d.sc.ParityDrives > 0 {
			d.internalDriveFailure(e.node, e.drive)
		} else {
			d.nirDriveFailure(e.node, e.drive)
		}
	case evNodeRebuildDone:
		if e.seq != n.rebuild || n.up {
			return
		}
		d.removeOutstanding(func(f failureRef) bool { return f.isNode && f.node == e.node })
		d.freshNode(e.node)
	case evDriveRebuildDone:
		if !n.up || e.seq != n.drives[e.drive].seq || n.drives[e.drive].up {
			return
		}
		d.removeOutstanding(func(f failureRef) bool { return !f.isNode && f.node == e.node && f.drive == e.drive })
		// Replenished spare capacity behaves like a fresh drive.
		n.drives[e.drive].up = true
		n.drives[e.drive].seq++
		d.scheduleDriveFailure(e.node, e.drive)
	case evRestripeDone:
		if !n.up || !n.restriping || e.seq != n.restripe {
			return
		}
		d.restripeDone(e.node)
	case evShock:
		d.shock()
		if !d.lost {
			d.q.schedule(event{at: d.now + d.exp(d.sc.ShockRate), kind: evShock})
		}
	}
}

// shock fails ShockSize uniformly chosen live nodes at once — a correlated
// failure outside the models' independence assumption.
func (d *des) shock() {
	live := make([]int, 0, len(d.nodes))
	for i := range d.nodes {
		if d.nodes[i].up {
			live = append(live, i)
		}
	}
	d.rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
	for i := 0; i < d.sc.ShockSize && i < len(live) && !d.lost; i++ {
		d.nodeLevelFailure(live[i])
	}
}

// nodeLevelFailure handles a whole-node (or internal-array) failure.
func (d *des) nodeLevelFailure(i int) {
	n := &d.nodes[i]
	n.up = false
	n.seq++
	n.restriping = false
	// Invalidate drive events and drop subsumed drive failures: the node
	// rebuild regenerates everything the node held.
	for j := range n.drives {
		n.drives[j].seq++
	}
	d.removeOutstanding(func(f failureRef) bool { return !f.isNode && f.node == i })
	d.outstanding = append(d.outstanding, failureRef{isNode: true, node: i})
	d.checkCriticalArrival()
	if d.lost {
		return
	}
	n.rebuild++
	rt := d.repairTime(d.sc.MuN)
	if d.m != nil {
		d.recs.node.Observe(rt)
	}
	d.q.schedule(event{at: d.now + rt, kind: evNodeRebuildDone, node: i, seq: n.rebuild})
}

// nirDriveFailure handles a drive failure when drives directly carry the
// inter-node code.
func (d *des) nirDriveFailure(i, j int) {
	n := &d.nodes[i]
	n.drives[j].up = false
	n.drives[j].seq++
	d.outstanding = append(d.outstanding, failureRef{isNode: false, node: i, drive: j})
	d.checkCriticalArrival()
	if d.lost {
		return
	}
	rt := d.repairTime(d.sc.MuD)
	if d.m != nil {
		d.recs.drive.Observe(rt)
	}
	d.q.schedule(event{at: d.now + rt, kind: evDriveRebuildDone, node: i, drive: j, seq: n.drives[j].seq})
}

// checkCriticalArrival applies the data-loss rules after a new failure:
// more distinct affected nodes than the fault tolerance loses data
// outright; arriving exactly at the tolerance makes the triggered rebuild
// critical, losing data with the Section 5.2.2 uncorrectable-error
// probability h_α. The h draw applies only without internal RAID: an
// internal array corrects uncorrectable read errors on its own drives, so
// IR node rebuilds are exposed only through the restripe λ_S path
// (exactly as in the paper's Figures 5–7, which carry no h terms).
func (d *des) checkCriticalArrival() {
	affected := d.affectedNodes()
	if affected > d.sc.T {
		d.lost = true
		d.cause = LossTolerance
		return
	}
	if d.sc.ParityDrives > 0 {
		return
	}
	if affected == d.sc.T && d.sc.CHER > 0 && len(d.outstanding) == d.sc.T {
		h := combinat.H(d.sc.N, d.sc.R, d.sc.D, d.sc.CHER, d.failureWord())
		if h > 1 {
			h = 1
		}
		if d.rng.Float64() < h {
			d.lost = true
			d.cause = LossCriticalUE
		}
	}
}

// internalDriveFailure handles a drive failure inside a RAID-protected
// node.
func (d *des) internalDriveFailure(i, j int) {
	n := &d.nodes[i]
	n.drives[j].up = false
	n.drives[j].seq++
	n.degraded++
	if n.degraded > d.sc.ParityDrives {
		// Beyond the array's tolerance: the whole node's data is gone.
		d.nodeLevelFailure(i)
		return
	}
	if !n.restriping {
		n.restriping = true
		n.restripe++
		rt := d.repairTime(d.sc.MuRestripe)
		if d.m != nil {
			d.recs.restripe.Observe(rt)
		}
		d.q.schedule(event{at: d.now + rt, kind: evRestripeDone, node: i, seq: n.restripe})
	}
}

// restripeDone completes an internal restripe: the failed drives leave the
// array and redundancy is restored. Reading the surviving data may hit an
// uncorrectable error; if the inter-node redundancy is critical at that
// moment, the error falls in a critical redundancy set with probability
// k_t and loses data (Section 5.2.1). Like the analytic models (constant
// d), the spare over-provisioning absorbs the capacity loss: the array
// returns to full strength.
func (d *des) restripeDone(i int) {
	n := &d.nodes[i]
	read := n.liveDrives - n.degraded
	// An uncorrectable read error only matters when the restripe had no
	// parity margin left (degraded == m): with RAID 6 a single-failure
	// restripe corrects UEs through the second parity, exactly as the
	// Figure 4 chain charges h only on the two-failures rebuild.
	critical := n.degraded == d.sc.ParityDrives
	n.degraded = 0
	n.restriping = false
	if critical && d.sc.CHER > 0 && d.affectedNodes() == d.sc.T {
		h := float64(read) * d.sc.CHER
		if h > 1 {
			h = 1
		}
		if d.rng.Float64() < h {
			kt := combinat.CriticalFraction(d.sc.N, d.sc.R, d.sc.T)
			if d.rng.Float64() < kt {
				d.lost = true
				d.cause = LossRestripeUE
				return
			}
		}
	}
	// Replenish: failed drives' data now lives on spare capacity that is
	// itself subject to drive failures, so the at-risk population stays d.
	for j := range n.drives {
		if !n.drives[j].up {
			n.drives[j].up = true
			n.drives[j].seq++
			d.scheduleDriveFailure(i, j)
		}
	}
	n.liveDrives = d.sc.D
}

// removeOutstanding deletes matching entries, preserving order.
func (d *des) removeOutstanding(match func(failureRef) bool) {
	out := d.outstanding[:0]
	for _, f := range d.outstanding {
		if !match(f) {
			out = append(out, f)
		}
	}
	d.outstanding = out
}

// Estimate summarizes repeated RunUntilLoss trials.
type Estimate struct {
	Trials    int
	MeanHours float64
	StdErr    float64
	MeanEvts  float64
}

// RelHalfWidth95 returns the 95% confidence half-width relative to the
// mean, or +Inf for a zero mean.
func (e Estimate) RelHalfWidth95() float64 {
	if e.MeanHours == 0 {
		return math.Inf(1)
	}
	return 1.96 * e.StdErr / e.MeanHours
}

// EstimateMTTDL runs independent trajectories and aggregates the observed
// times to data loss.
func EstimateMTTDL(sc Scenario, rng *rand.Rand, trials, maxEventsPerTrial int) (Estimate, error) {
	return estimateMTTDL(sc, rng, trials, maxEventsPerTrial, Observer{})
}

func estimateMTTDL(sc Scenario, rng *rand.Rand, trials, maxEventsPerTrial int, ob Observer) (Estimate, error) {
	if trials < 2 {
		return Estimate{}, fmt.Errorf("sim: need at least 2 trials, got %d", trials)
	}
	// Welford's online algorithm: the textbook sumSq - sum·mean form
	// cancels catastrophically for MTTDLs of 10¹⁰ hours and beyond.
	var w welford
	var evts float64
	var recs *desRecorders
	if ob.Metrics != nil {
		recs = newDESRecorders(ob.Metrics)
	}
	for i := 0; i < trials; i++ {
		r, err := runUntilLoss(sc, rng, maxEventsPerTrial, ob.Metrics, recs)
		if err != nil {
			return Estimate{}, fmt.Errorf("trial %d: %w", i, err)
		}
		observeMissionCallbacks(ob, i, r)
		w.observe(r.Time)
		evts += float64(r.Events)
	}
	return Estimate{
		Trials:    trials,
		MeanHours: w.mean,
		StdErr:    math.Sqrt(w.variance() / float64(trials)),
		MeanEvts:  evts / float64(trials),
	}, nil
}

// observeMissionCallbacks fires the per-mission observer surface for one
// completed mission: metrics fold, hook event, progress callback. The
// parallel estimator serializes calls to this under a mutex so JSONL
// events stay well-formed and OnMission never runs concurrently.
func observeMissionCallbacks(ob Observer, i int, r LossResult) {
	if ob.Metrics != nil {
		ob.Metrics.observeMission(r)
	}
	if ob.Hook != nil {
		ob.Hook.Emit(obs.Event{T: r.Time, Name: "data_loss", Fields: map[string]any{
			"mission": i,
			"cause":   r.Cause.String(),
			"events":  r.Events,
		}})
	}
	if ob.OnMission != nil {
		ob.OnMission(i, r)
	}
}
