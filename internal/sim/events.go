// Package sim validates the analytic models by stochastic simulation, two
// ways:
//
//   - a discrete-event simulator of the full system (nodes, drives,
//     concurrent rebuilds, restripes, uncorrectable errors, fail-in-place
//     with spare replenishment) whose dynamics are *not* the Markov chain's
//     — repairs proceed concurrently rather than last-in-first-out — so
//     agreement with the chain quantifies the paper's modelling
//     simplifications;
//   - a regenerative rare-event estimator with balanced failure biasing
//     over any absorbing markov.Chain, for MTTDL regimes far beyond what
//     naive simulation can reach.
package sim

import (
	"container/heap"
	"fmt"
)

// eventKind enumerates simulator events.
type eventKind int

const (
	evNodeFail eventKind = iota + 1
	evDriveFail
	evNodeRebuildDone
	evDriveRebuildDone
	evRestripeDone
	evShock
)

// String returns the snake_case metric tag of the kind.
func (k eventKind) String() string {
	switch k {
	case evNodeFail:
		return "node_fail"
	case evDriveFail:
		return "drive_fail"
	case evNodeRebuildDone:
		return "node_rebuild_done"
	case evDriveRebuildDone:
		return "drive_rebuild_done"
	case evRestripeDone:
		return "restripe_done"
	case evShock:
		return "shock"
	default:
		return fmt.Sprintf("eventKind(%d)", int(k))
	}
}

// event is one scheduled occurrence. The node/drive fields identify the
// target component; seq disambiguates stale events after state changes.
type event struct {
	at    float64
	kind  eventKind
	node  int
	drive int
	seq   uint64
}

// eventQueue is a min-heap on event time.
type eventQueue []event

func (q eventQueue) Len() int            { return len(q) }
func (q eventQueue) Less(i, j int) bool  { return q[i].at < q[j].at }
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// schedule pushes an event.
func (q *eventQueue) schedule(e event) { heap.Push(q, e) }

// next pops the earliest event.
func (q *eventQueue) next() event { return heap.Pop(q).(event) }
