// Package sim validates the analytic models by stochastic simulation, two
// ways:
//
//   - a discrete-event simulator of the full system (nodes, drives,
//     concurrent rebuilds, restripes, uncorrectable errors, fail-in-place
//     with spare replenishment) whose dynamics are *not* the Markov chain's
//     — repairs proceed concurrently rather than last-in-first-out — so
//     agreement with the chain quantifies the paper's modelling
//     simplifications;
//   - a regenerative rare-event estimator with balanced failure biasing
//     over any absorbing markov.Chain, for MTTDL regimes far beyond what
//     naive simulation can reach;
//   - a fleet-scale estimator that simulates millions of bricks (storage
//     nodes, grouped into node sets of N) over a mission horizon by
//     aggregating identical fully-healthy node sets into one counted
//     record (see fleet.go).
package sim

import (
	"container/heap"
	"fmt"
)

// eventKind enumerates simulator events. The order is part of the event
// tie-break contract below, so new kinds append only.
type eventKind int

const (
	evNodeFail eventKind = iota + 1
	evDriveFail
	evNodeRebuildDone
	evDriveRebuildDone
	evRestripeDone
	evShock
	// evClassArrival is the next failure arrival of the aggregated
	// healthy-node-set class (fleet engine only).
	evClassArrival
	// evSetArrival is the next component-failure arrival of one split
	// node set, sampled by competing risks (fleet engine only).
	evSetArrival

	numEventKinds = evSetArrival + 1
)

// String returns the snake_case metric tag of the kind.
func (k eventKind) String() string {
	switch k {
	case evNodeFail:
		return "node_fail"
	case evDriveFail:
		return "drive_fail"
	case evNodeRebuildDone:
		return "node_rebuild_done"
	case evDriveRebuildDone:
		return "drive_rebuild_done"
	case evRestripeDone:
		return "restripe_done"
	case evShock:
		return "shock"
	case evClassArrival:
		return "class_arrival"
	case evSetArrival:
		return "set_arrival"
	default:
		return fmt.Sprintf("eventKind(%d)", int(k))
	}
}

// event is one scheduled occurrence. The node/drive fields identify the
// target component; set identifies the owning node-set record in the
// fleet engine (0 in the single-system simulator); seq disambiguates
// stale events after state changes.
type event struct {
	at    float64
	kind  eventKind
	set   int32
	node  int
	drive int
	seq   uint64
}

// less is the scheduler ordering: time first, then the explicit
// (kind, set, node, drive, seq) tie-break. Equal-time events are a
// measure-zero accident of continuous draws, but the tie-break is a
// *contract*, not a heap accident: every engine pops the same total order,
// which is what makes heap-vs-calendar event sequences comparable byte for
// byte. The order is strict — no two live events compare equal, because
// (kind, set, node, drive) identifies a pending slot and seq
// disambiguates reschedules of that slot.
func (e event) less(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	if e.kind != o.kind {
		return e.kind < o.kind
	}
	if e.set != o.set {
		return e.set < o.set
	}
	if e.node != o.node {
		return e.node < o.node
	}
	if e.drive != o.drive {
		return e.drive < o.drive
	}
	return e.seq < o.seq
}

// scheduler is the event-queue contract the simulators run on: schedule
// inserts, next removes and returns the minimum under event.less, Len
// reports pending events. Cancellation is lazy everywhere — dispatchers
// discard stale events by seq — so schedulers never delete in place.
//
// Two engines implement it: eventQueue (container/heap, the reference)
// and calendarQueue (bucketed, the fleet-scale engine). The cross-engine
// harness in equivalence_test.go holds them to identical pop sequences.
type scheduler interface {
	schedule(e event)
	next() event
	Len() int
}

// eventQueue is a min-heap on the event ordering — the reference engine.
type eventQueue []event

func (q eventQueue) Len() int            { return len(q) }
func (q eventQueue) Less(i, j int) bool  { return q[i].less(q[j]) }
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// schedule pushes an event.
func (q *eventQueue) schedule(e event) { heap.Push(q, e) }

// next pops the earliest event.
func (q *eventQueue) next() event { return heap.Pop(q).(event) }

// newScheduler builds the queue for an engine choice.
func newScheduler(e Engine) scheduler {
	if e == EngineCalendar {
		return newCalendarQueue()
	}
	return &eventQueue{}
}
