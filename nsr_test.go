package nsr

import (
	"math"
	"testing"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	p := Baseline()
	r, err := Analyze(p, Config{Internal: InternalRAID5, NodeFaultTolerance: 2}, MethodClosedForm)
	if err != nil {
		t.Fatal(err)
	}
	if !PaperTarget().Meets(r) {
		t.Errorf("FT2+RAID5 should meet the paper target, got %.3g events/PB-yr", r.EventsPerPBYear)
	}
}

func TestFacadeConfigSets(t *testing.T) {
	if len(BaselineConfigs()) != 9 {
		t.Errorf("BaselineConfigs = %d, want 9", len(BaselineConfigs()))
	}
	if len(SensitivityConfigs()) != 3 {
		t.Errorf("SensitivityConfigs = %d, want 3", len(SensitivityConfigs()))
	}
}

func TestFacadeAnalyzeAllAndFigures(t *testing.T) {
	p := Baseline()
	results, err := AnalyzeAll(p, SensitivityConfigs(), MethodClosedForm)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	tables, err := AllFigures(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 11 {
		t.Errorf("AllFigures = %d tables, want 11", len(tables))
	}
}

func TestFacadeMethodsAgree(t *testing.T) {
	p := Baseline()
	cfg := Config{Internal: InternalNone, NodeFaultTolerance: 3}
	cf, err := Analyze(p, cfg, MethodClosedForm)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := Analyze(p, cfg, MethodExactChain)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(cf.MTTDLHours-ex.MTTDLHours) / ex.MTTDLHours; rel > 0.05 {
		t.Errorf("closed form and exact chain differ by %.1f%%", 100*rel)
	}
}
