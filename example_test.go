package nsr_test

import (
	"fmt"
	"log"

	nsr "repro"
)

// Analyze the paper's recommended configuration against its reliability
// target.
func Example() {
	p := nsr.Baseline()
	cfg := nsr.Config{Internal: nsr.InternalRAID5, NodeFaultTolerance: 2}
	r, err := nsr.Analyze(p, cfg, nsr.MethodClosedForm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %.3g events/PB-year (meets target: %v)\n",
		cfg, r.EventsPerPBYear, nsr.PaperTarget().Meets(r))
	// Output:
	// FT 2, Internal RAID 5: 5.55e-06 events/PB-year (meets target: true)
}

// Compare the paper's closed-form approximation with the exact chain
// solution.
func ExampleAnalyze_methods() {
	p := nsr.Baseline()
	cfg := nsr.Config{Internal: nsr.InternalNone, NodeFaultTolerance: 3}
	cf, err := nsr.Analyze(p, cfg, nsr.MethodClosedForm)
	if err != nil {
		log.Fatal(err)
	}
	ex, err := nsr.Analyze(p, cfg, nsr.MethodExactStable)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("closed form %.3g h, exact %.3g h\n", cf.MTTDLHours, ex.MTTDLHours)
	// Output:
	// closed form 1.94e+11 h, exact 1.94e+11 h
}

// Every FT 1 configuration misses the target at baseline (Figure 13,
// observation 1).
func ExampleBaselineConfigs() {
	p := nsr.Baseline()
	target := nsr.PaperTarget()
	for _, cfg := range nsr.BaselineConfigs() {
		if cfg.NodeFaultTolerance != 1 {
			continue
		}
		r, err := nsr.Analyze(p, cfg, nsr.MethodClosedForm)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: meets=%v\n", cfg, target.Meets(r))
	}
	// Output:
	// FT 1, No Internal RAID: meets=false
	// FT 1, Internal RAID 5: meets=false
	// FT 1, Internal RAID 6: meets=false
}
