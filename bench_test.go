package nsr

// One benchmark per paper table/figure (Figure 13 baseline, Figures 14–20
// sensitivity sweeps, appendix theorem), plus micro-benchmarks for the
// substrates. Each figure benchmark regenerates the full table per
// iteration and reports headline scalars via ReportMetric; the textual
// tables themselves come from cmd/nsr-report.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/closedform"
	"repro/internal/core"
	"repro/internal/erasure"
	"repro/internal/experiments"
	"repro/internal/linalg"
	"repro/internal/markov"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/params"
	"repro/internal/rebuild"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/trace"
)

func BenchmarkFig13Baseline(b *testing.B) {
	p := params.Baseline()
	var ft2ir5 float64
	for i := 0; i < b.N; i++ {
		_, results, err := experiments.Fig13Baseline(p)
		if err != nil {
			b.Fatal(err)
		}
		ft2ir5 = results[4].EventsPerPBYear // FT 2, Internal RAID 5
	}
	b.ReportMetric(ft2ir5, "FT2-IR5-events/PB-yr")
}

func benchSweep(b *testing.B, gen func(params.Parameters) (*experiments.Table, []core.SweepPoint, error)) {
	b.Helper()
	p := params.Baseline()
	var rows int
	for i := 0; i < b.N; i++ {
		t, _, err := gen(p)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(t.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkFig14DriveMTTF(b *testing.B) {
	p := params.Baseline()
	var tables int
	for i := 0; i < b.N; i++ {
		ts, err := experiments.Fig14DriveMTTF(p)
		if err != nil {
			b.Fatal(err)
		}
		tables = len(ts)
	}
	b.ReportMetric(float64(tables), "tables")
}

func BenchmarkFig15NodeMTTF(b *testing.B) {
	p := params.Baseline()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig15NodeMTTF(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16RebuildBlock(b *testing.B) {
	benchSweep(b, experiments.Fig16RebuildBlockSize)
}

func BenchmarkFig17LinkSpeed(b *testing.B) {
	benchSweep(b, experiments.Fig17LinkSpeed)
}

func BenchmarkFig18NodeSetSize(b *testing.B) {
	benchSweep(b, experiments.Fig18NodeSetSize)
}

func BenchmarkFig19RedundancySetSize(b *testing.B) {
	benchSweep(b, experiments.Fig19RedundancySetSize)
}

func BenchmarkFig20DrivesPerNode(b *testing.B) {
	benchSweep(b, experiments.Fig20DrivesPerNode)
}

func BenchmarkAppendixGeneralK(b *testing.B) {
	p := params.Baseline()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AppendixGeneralK(p, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorValidation runs the accelerated DES-vs-chain
// comparison (the experiment behind cmd/nsr-simulate -mode des).
func BenchmarkSimulatorValidation(b *testing.B) {
	sc := sim.Scenario{
		N: 8, R: 4, D: 3, T: 1,
		LambdaN: 1e-3, LambdaD: 2e-3, MuN: 2, MuD: 5,
		CHER: 0.01, Repair: sim.RepairExponential,
	}
	rng := rand.New(rand.NewSource(1))
	var mean float64
	for i := 0; i < b.N; i++ {
		est, err := sim.EstimateMTTDL(sc, rng, 200, 1_000_000)
		if err != nil {
			b.Fatal(err)
		}
		mean = est.MeanHours
	}
	b.ReportMetric(mean, "MTTDL-h")
}

// BenchmarkDESBaseline and BenchmarkDESInstrumented bound the cost of the
// observability layer on the DES hot loop: baseline runs with no metrics
// attached (the nil-guard path), instrumented attaches a live registry and
// event hook. The ratio of their ns/op is the telemetry overhead.
func desOverheadScenario() sim.Scenario {
	return sim.Scenario{
		N: 8, R: 4, D: 3, T: 1,
		LambdaN: 1e-3, LambdaD: 2e-3, MuN: 2, MuD: 5,
		CHER: 0.01, Repair: sim.RepairExponential,
	}
}

func BenchmarkDESBaseline(b *testing.B) {
	sc := desOverheadScenario()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.EstimateMTTDL(sc, rng, 100, 1_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDESInstrumented(b *testing.B) {
	sc := desOverheadScenario()
	rng := rand.New(rand.NewSource(1))
	reg := obs.NewRegistry()
	ob := sim.Observer{Metrics: sim.NewMetrics(reg)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.EstimateMTTDLObserved(sc, rng, 100, 1_000_000, ob); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBiasedRareEvent measures the balanced-failure-biasing estimator
// on the baseline FT2-NIR chain (MTTDL ≈ 2×10⁷ h).
func BenchmarkBiasedRareEvent(b *testing.B) {
	p := params.Baseline()
	rates := rebuild.Compute(p, 2)
	in := closedform.NIRInputs{
		N: p.NodeSetSize, R: p.RedundancySetSize, D: p.DrivesPerNode,
		LambdaN: p.NodeFailureRate(), LambdaD: p.DriveFailureRate(),
		MuN: rates.NodeRebuild, MuD: rates.DriveRebuild, CHER: p.CHER(),
	}
	ch := model.NIRChain(in, 2)
	th := sim.RepairThreshold(ch)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.EstimateMTTABiased(ch, rng, 2000, 0.5, th); err != nil {
			b.Fatal(err)
		}
	}
}

// Substrate micro-benchmarks.

func BenchmarkChainSolveNIR(b *testing.B) {
	p := params.Baseline()
	for _, k := range []int{1, 2, 3, 4, 5} {
		b.Run(map[int]string{1: "k=1", 2: "k=2", 3: "k=3", 4: "k=4", 5: "k=5"}[k], func(b *testing.B) {
			rates := rebuild.Compute(p, min(k, 3))
			in := closedform.NIRInputs{
				N: p.NodeSetSize, R: p.RedundancySetSize, D: p.DrivesPerNode,
				LambdaN: p.NodeFailureRate(), LambdaD: p.DriveFailureRate(),
				MuN: rates.NodeRebuild, MuD: rates.DriveRebuild, CHER: p.CHER(),
			}
			ch := model.NIRChain(in, k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := markov.MTTA(ch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkClosedFormGeneralK(b *testing.B) {
	p := params.Baseline()
	rates := rebuild.Compute(p, 3)
	in := closedform.NIRInputs{
		N: p.NodeSetSize, R: p.RedundancySetSize, D: p.DrivesPerNode,
		LambdaN: p.NodeFailureRate(), LambdaD: p.DriveFailureRate(),
		MuN: rates.NodeRebuild, MuD: rates.DriveRebuild, CHER: p.CHER(),
	}
	var out float64
	for i := 0; i < b.N; i++ {
		out = closedform.NIRMTTDLGeneral(in, 3)
	}
	b.ReportMetric(out, "MTTDL-h")
}

func BenchmarkLUSolve64(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 64
	m := linalg.New(n, n)
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			if i != j {
				v := rng.Float64()
				m.Set(i, j, v)
				sum += v
			}
		}
		m.Set(i, i, sum+1)
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linalg.Solve(m, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkErasureEncode(b *testing.B) {
	code, err := erasure.New(6, 2) // paper geometry at FT 2
	if err != nil {
		b.Fatal(err)
	}
	shards := make([][]byte, code.TotalShards())
	rng := rand.New(rand.NewSource(4))
	const shardSize = 64 << 10
	for i := range shards {
		shards[i] = make([]byte, shardSize)
		if i < code.DataShards() {
			rng.Read(shards[i])
		}
	}
	b.SetBytes(int64(code.DataShards() * shardSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := code.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkErasureReconstruct(b *testing.B) {
	code, err := erasure.New(6, 2)
	if err != nil {
		b.Fatal(err)
	}
	shards := make([][]byte, code.TotalShards())
	rng := rand.New(rand.NewSource(5))
	const shardSize = 64 << 10
	for i := range shards {
		shards[i] = make([]byte, shardSize)
		if i < code.DataShards() {
			rng.Read(shards[i])
		}
	}
	if err := code.Encode(shards); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(2 * shardSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		saved0, saved3 := shards[0], shards[3]
		shards[0], shards[3] = nil, nil
		if err := code.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
		_ = saved0
		_ = saved3
	}
}

func BenchmarkAnalyzeExactChain(b *testing.B) {
	p := params.Baseline()
	cfg := core.Config{Internal: core.InternalNone, NodeFaultTolerance: 3}
	for i := 0; i < b.N; i++ {
		if _, err := core.Analyze(p, cfg, core.MethodExactChain); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecursiveVsLU contrasts the appendix's determinant recursion
// (O(2^k), cancellation-free) with the dense solve (O(8^k)) at k=5.
func BenchmarkRecursiveExactK5(b *testing.B) {
	p := params.Baseline()
	rates := rebuild.Compute(p, 3)
	in := closedform.NIRInputs{
		N: p.NodeSetSize, R: p.RedundancySetSize, D: p.DrivesPerNode,
		LambdaN: p.NodeFailureRate(), LambdaD: p.DriveFailureRate(),
		MuN: rates.NodeRebuild, MuD: rates.DriveRebuild, CHER: p.CHER(),
	}
	var out float64
	for i := 0; i < b.N; i++ {
		out = closedform.NIRMTTDLRecursive(in, 5)
	}
	b.ReportMetric(out, "MTTDL-h")
}

// BenchmarkMissionTransient measures the uniformization path behind the
// mission-reliability table.
func BenchmarkMissionTransient(b *testing.B) {
	p := params.Baseline()
	cfg := core.Config{Internal: core.InternalNone, NodeFaultTolerance: 2}
	for i := 0; i < b.N; i++ {
		if _, err := core.MissionSurvival(p, cfg, 5*params.HoursPerYear, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScrubSweep measures the latent-fault scrub-interval study.
func BenchmarkScrubSweep(b *testing.B) {
	p := params.Baseline()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationScrub(p, 1.0/params.HoursPerYear); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceGenerateReplay measures a full trace round: generate a
// 5-year fleet trace and replay it against the brick store.
func BenchmarkTraceGenerateReplay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr, err := trace.Generate(trace.GenerateOptions{
			Nodes: 16, DrivesPerNode: 4,
			NodeMTTFHours: 400_000, DriveMTTFHours: 300_000,
			LatentFaultsPerDriveHour: 1e-5,
			HorizonHours:             5 * params.HoursPerYear,
			Seed:                     int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		sys, err := storage.NewSystem(storage.Config{
			Nodes: 16, DrivesPerNode: 4,
			RedundancySetSize: 8, FaultTolerance: 2,
			DriveCapacityBytes: 8 << 20,
		})
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 16; j++ {
			if err := sys.Put(fmt.Sprintf("o%d", j), make([]byte, 8<<10)); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := trace.Replay(tr, sys, trace.Policy{
			RebuildAfterEachFailure: true, ScrubEveryHours: 720,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateParallel measures the deterministic parallel DES
// estimator across worker counts (the estimate is bit-identical at every
// count; only wall-clock changes). Scaling is visible only when
// GOMAXPROCS exceeds the worker count.
func BenchmarkEstimateParallel(b *testing.B) {
	sc := desOverheadScenario()
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.EstimateMTTDLParallel(sc, 1, 512, 1_000_000, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweepParallel measures a Section 7 style sweep grid under the
// core worker pool at several caps.
func BenchmarkSweepParallel(b *testing.B) {
	p := params.Baseline()
	cfgs := core.SensitivityConfigs()
	xs := []float64{50_000, 100_000, 200_000, 460_000, 700_000, 1_000_000}
	apply := func(p *params.Parameters, x float64) { p.NodeMTTFHours = x }
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			core.SetMaxWorkers(w)
			defer core.SetMaxWorkers(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Sweep(p, cfgs, core.MethodExactChain, xs, apply); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLUSolveNoAlloc pins the allocation-free solve path: one
// factorization plus forward and transpose solves per iteration, into
// caller-owned buffers. allocs/op must be 0.
func BenchmarkLUSolveNoAlloc(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 64
	m := linalg.New(n, n)
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			if i != j {
				v := rng.Float64()
				m.Set(i, j, v)
				sum += v
			}
		}
		m.Set(i, i, sum+1)
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = rng.Float64()
	}
	var f linalg.LU
	dst := make([]float64, n)
	work := make([]float64, n)
	// Warm up so the LU owns its full-size buffers before counting.
	if err := linalg.FactorizeInto(&f, m); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := linalg.FactorizeInto(&f, m); err != nil {
			b.Fatal(err)
		}
		f.SolveInto(dst, rhs)
		f.SolveTransposeInto(dst, rhs, work)
	}
}

// Sparse CTMC solve path benchmarks (BENCH_sparse.json).

// benchAbsorbingChain builds a deterministic layered absorbing chain with
// n transient states — the banded, low-degree structure reliability
// chains have, scaled past the paper's sizes. Rates stay within two
// orders of magnitude so both solve paths are far from conditioning
// limits and the comparison measures arithmetic, not luck.
func benchAbsorbingChain(n int) *markov.Chain {
	rng := rand.New(rand.NewSource(int64(n)))
	const width = 8
	layers := (n + width - 1) / width
	c := markov.NewChain()
	name := func(l, w int) string { return fmt.Sprintf("s%d_%d", l, w) }
	c.SetInitial(name(0, 0))
	c.SetAbsorbing("A")
	for l := 0; l < layers; l++ {
		for w := 0; w < width; w++ {
			from := name(l, w)
			// Forward-biased: drift toward absorption keeps MTTA ~ O(layers)
			// and the system far from conditioning limits at every n (a
			// backward-biased walk would make MTTA — and κ — exponential
			// in depth, and the benchmark would measure garbage).
			if l == layers-1 {
				c.AddRate(from, "A", 0.5+rng.Float64())
			} else {
				c.AddRate(from, name(l+1, rng.Intn(width)), 0.5+rng.Float64())
			}
			if w+1 < width {
				c.AddRate(from, name(l, w+1), 0.3*rng.Float64())
			}
			if l > 0 {
				c.AddRate(from, name(l-1, rng.Intn(width)), 0.3*rng.Float64())
			}
		}
	}
	return c.Freeze()
}

// benchAbsorption measures one Solver solving the same frozen chain
// repeatedly — the sweep-grid steady state — with the dense→sparse
// crossover pinned to force one path.
func benchAbsorption(b *testing.B, n, minStates int) {
	b.Helper()
	ch := benchAbsorbingChain(n)
	prev := markov.SetSparseMinStates(minStates)
	defer markov.SetSparseMinStates(prev)
	s := markov.NewSolver()
	if _, err := s.MTTA(ch); err != nil { // warm buffers and the symbolic cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.MTTA(ch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAbsorptionSparse is the CSR symbolic/numeric path: after the
// first solve the topology cache is warm, so each iteration is numeric
// refactor + transpose solve only.
func BenchmarkAbsorptionSparse(b *testing.B) {
	for _, n := range []int{64, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchAbsorption(b, n, 1) })
	}
}

// BenchmarkAbsorptionDense is the same workload forced through dense
// partial-pivot LU — the pre-sparse baseline. n=4096 runs ~a minute per
// iteration; use -benchtime=1x when recording it.
func BenchmarkAbsorptionDense(b *testing.B) {
	for _, n := range []int{64, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchAbsorption(b, n, 1<<30) })
	}
}

// BenchmarkSweepSparseReuse measures a Section 7 style sweep at r=48,
// ft=7 (255 transient states per cell, well past the crossover): every
// grid cell reuses the pooled chain topology and the cached symbolic
// factorization, refilling numeric values only.
func BenchmarkSweepSparseReuse(b *testing.B) {
	p := params.Baseline()
	p.RedundancySetSize = 48
	cfgs := []core.Config{{Internal: core.InternalNone, NodeFaultTolerance: 7}}
	xs := make([]float64, 64)
	for i := range xs {
		xs[i] = float64(200_000 + i)
	}
	apply := func(p *params.Parameters, x float64) { p.DriveMTTFHours = x }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Sweep(p, cfgs, core.MethodExactChain, xs, apply); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(xs)*len(cfgs)), "cells")
}

// Batched sweep engine benchmarks (BENCH_batch.json).

// benchSweepGrid runs one r=48/ft=7 DriveMTTF sweep of nx cells per
// iteration — the same 255-transient-state chain as
// BenchmarkSweepSparseReuse — with the batch chunk size pinned.
// batch < 0 forces the per-cell path (rebuild the chain from strings for
// every cell); batch = 0 uses the batched engine's default chunk.
func benchSweepGrid(b *testing.B, nx, batch int) {
	b.Helper()
	p := params.Baseline()
	p.RedundancySetSize = 48
	cfgs := []core.Config{{Internal: core.InternalNone, NodeFaultTolerance: 7}}
	xs := make([]float64, nx)
	for i := range xs {
		xs[i] = float64(200_000 + i)
	}
	apply := func(p *params.Parameters, x float64) { p.DriveMTTFHours = x }
	prev := core.SetBatchCells(batch)
	defer core.SetBatchCells(prev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Sweep(p, cfgs, core.MethodExactChain, xs, apply); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(nx*len(cfgs)), "cells")
}

// BenchmarkSweepBatch contrasts the structure-of-arrays batched cell
// solver against the per-cell path on the Section 7 figure grid (64
// cells) and a 10k-cell grid. Both variants produce bit-identical
// results (TestSweepBatchMatchesPerCellBitwise); only wall-clock
// differs. The batched engine amortizes chain construction: rates are
// refilled through a compiled index program straight into the shared
// CSR skeleton, so the per-cell string/map work disappears.
func BenchmarkSweepBatch(b *testing.B) {
	for _, c := range []struct {
		name      string
		nx, batch int
	}{
		{"cells=64/batched", 64, 0},
		{"cells=64/percell", 64, -1},
		{"cells=10240/batched", 10_240, 0},
		{"cells=10240/percell", 10_240, -1},
	} {
		b.Run(c.name, func(b *testing.B) { benchSweepGrid(b, c.nx, c.batch) })
	}
}

// BenchmarkStorageRebuild measures the distributed rebuild data path.
func BenchmarkStorageRebuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys, err := storage.NewSystem(storage.Config{
			Nodes: 16, DrivesPerNode: 4,
			RedundancySetSize: 8, FaultTolerance: 2,
			DriveCapacityBytes: 64 << 20,
		})
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 32; j++ {
			if err := sys.Put(fmt.Sprintf("o%d", j), make([]byte, 64<<10)); err != nil {
				b.Fatal(err)
			}
		}
		if err := sys.FailNode(i % 16); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := sys.Rebuild(); err != nil {
			b.Fatal(err)
		}
	}
}
