// Package nsr (networked storage reliability) is the public API of this
// reproduction of "Reliability for Networked Storage Nodes" (Rao, Hafner,
// Golding; IBM Research / DSN 2006).
//
// The paper models a distributed storage system built from unreliable
// bricks — N sealed nodes of d drives each — protected by an erasure code
// of fault tolerance t across nodes and optionally RAID 5/6 inside each
// node. Continuous-time Markov chains with absorbing states yield the mean
// time to data loss (MTTDL), reported as data-loss events per
// petabyte-year against a reliability target of 2×10⁻³.
//
// Quick start:
//
//	p := nsr.Baseline()
//	r, err := nsr.Analyze(p, nsr.Config{
//		Internal:           nsr.InternalRAID5,
//		NodeFaultTolerance: 2,
//	}, nsr.MethodClosedForm)
//	if err != nil { ... }
//	fmt.Printf("%.3g events/PB-year\n", r.EventsPerPBYear)
//
// The facade re-exports the analysis engine (internal/core), the paper's
// parameter set (internal/params) and the figure regenerators
// (internal/experiments). Deeper layers — the CTMC solver, the closed
// forms, the chain builders, the rebuild model, the erasure code, the
// brick store and the simulators — live in the internal packages and are
// exercised by the cmd tools and examples.
package nsr

import (
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/params"
)

// Parameters is the paper's Section 6 parameter set.
type Parameters = params.Parameters

// Config identifies a redundancy configuration.
type Config = core.Config

// InternalRedundancy selects the in-node redundancy scheme.
type InternalRedundancy = core.InternalRedundancy

// Internal redundancy schemes.
const (
	InternalNone  = core.InternalNone
	InternalRAID5 = core.InternalRAID5
	InternalRAID6 = core.InternalRAID6
)

// Method selects the solution technique.
type Method = core.Method

// Solution methods.
const (
	// MethodClosedForm evaluates the paper's printed approximations.
	MethodClosedForm = core.MethodClosedForm
	// MethodExactChain solves the underlying Markov chains exactly.
	MethodExactChain = core.MethodExactChain
	// MethodExactStable evaluates the exact solutions via
	// cancellation-free recurrences — numerically robust to deep fault
	// tolerance.
	MethodExactStable = core.MethodExactStable
)

// Result is a reliability analysis outcome.
type Result = core.Result

// Target is a reliability goal in events per PB-year.
type Target = core.Target

// Table is a regenerated paper figure.
type Table = experiments.Table

// Baseline returns the paper's baseline parameters: 64 nodes × 12 drives
// of 300 GB, MTTF 400k/300k hours, 10 Gb/s links, 128 KiB rebuild commands.
func Baseline() Parameters { return params.Baseline() }

// Analyze computes MTTDL and events per PB-year for one configuration.
func Analyze(p Parameters, cfg Config, m Method) (Result, error) {
	return core.Analyze(p, cfg, m)
}

// AnalyzeAll analyzes several configurations in order.
func AnalyzeAll(p Parameters, cfgs []Config, m Method) ([]Result, error) {
	return core.AnalyzeAll(p, cfgs, m)
}

// BaselineConfigs returns the paper's nine Figure 13 configurations.
func BaselineConfigs() []Config { return core.BaselineConfigs() }

// SensitivityConfigs returns the three Section 7 configurations.
func SensitivityConfigs() []Config { return core.SensitivityConfigs() }

// PaperTarget returns the paper's 2×10⁻³ events/PB-year goal.
func PaperTarget() Target { return core.PaperTarget() }

// AllFigures regenerates every evaluation figure at the given parameters.
func AllFigures(p Parameters) ([]*Table, error) { return experiments.All(p) }

// Ablations regenerates the extension studies (model-assumption DES
// comparison, elasticities, rebuild bottleneck, scrubbing, mission
// reliability, spares plan). trials sizes the simulation table.
func Ablations(p Parameters, trials int, seed int64) ([]*Table, error) {
	return experiments.Ablations(p, trials, seed)
}

// DegradedExposure is a configuration's degraded-mode lifetime profile.
type DegradedExposure = core.DegradedExposure

// Exposure computes the expected fraction of pre-loss lifetime spent at
// each failure depth, from the exact chain.
func Exposure(p Parameters, cfg Config) (DegradedExposure, error) {
	return core.Exposure(p, cfg)
}

// Elasticity is a log-log parameter sensitivity of events/PB-year.
type Elasticity = core.Elasticity

// Elasticities computes d log(events)/d log(θ) for every tunable
// parameter. step is the relative perturbation (0 selects 1%).
func Elasticities(p Parameters, cfg Config, m Method, step float64) ([]Elasticity, error) {
	return core.Elasticities(p, cfg, m, step)
}

// Advice is a single-parameter path to (or headroom against) a target.
type Advice = core.Advice

// Advise finds, for each tunable parameter, the factor by which it alone
// must change to put the configuration exactly on the target.
func Advise(p Parameters, cfg Config, target Target, m Method) ([]Advice, error) {
	return core.Advise(p, cfg, target, m)
}

// MissionResult is a finite-horizon reliability computation.
type MissionResult = core.MissionResult

// MissionSurvival computes the probability of data loss within a mission
// for one system and a fleet, from the exact chain's transient solution.
func MissionSurvival(p Parameters, cfg Config, hours float64, fleetSize int) (MissionResult, error) {
	return core.MissionSurvival(p, cfg, hours, fleetSize)
}
