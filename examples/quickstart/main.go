// Quickstart: analyze one redundancy configuration against the paper's
// reliability target using the public API.
package main

import (
	"fmt"
	"log"

	nsr "repro"
)

func main() {
	p := nsr.Baseline()

	// The configuration the paper ends up recommending: erasure code with
	// fault tolerance 2 across nodes, RAID 5 inside each node.
	cfg := nsr.Config{Internal: nsr.InternalRAID5, NodeFaultTolerance: 2}

	result, err := nsr.Analyze(p, cfg, nsr.MethodClosedForm)
	if err != nil {
		log.Fatal(err)
	}

	target := nsr.PaperTarget()
	fmt.Printf("configuration:      %s\n", cfg)
	fmt.Printf("MTTDL:              %.3g hours (%.3g years)\n",
		result.MTTDLHours, result.MTTDLHours/8766)
	fmt.Printf("logical capacity:   %.3f PB\n", result.LogicalCapacityPB)
	fmt.Printf("reliability:        %.3g data-loss events per PB-year\n", result.EventsPerPBYear)
	fmt.Printf("target (2e-3):      meets=%v, margin=%.0f×\n",
		target.Meets(result), target.Margin(result))

	// Cross-check the closed form against the exact Markov chain.
	exact, err := nsr.Analyze(p, cfg, nsr.MethodExactChain)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact chain MTTDL:  %.3g hours (closed form is %+.2f%% off)\n",
		exact.MTTDLHours, 100*(result.MTTDLHours-exact.MTTDLHours)/exact.MTTDLHours)
}
