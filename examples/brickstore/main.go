// Brick store: drive the executable storage substrate end to end — write
// objects across a collection of bricks, fail nodes and drives in place,
// run distributed rebuilds, and verify that data survives exactly within
// the configured fault tolerance.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/storage"
)

func main() {
	sys, err := storage.NewSystem(storage.Config{
		Nodes:              16,
		DrivesPerNode:      4,
		RedundancySetSize:  8,
		FaultTolerance:     2,
		DriveCapacityBytes: 64 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Load the store.
	rng := rand.New(rand.NewSource(42))
	payloads := make(map[string][]byte)
	for i := 0; i < 100; i++ {
		id := fmt.Sprintf("object-%03d", i)
		data := make([]byte, 16<<10+rng.Intn(64<<10))
		rng.Read(data)
		payloads[id] = data
		if err := sys.Put(id, data); err != nil {
			log.Fatalf("put %s: %v", id, err)
		}
	}
	st := sys.Stats()
	fmt.Printf("loaded %d objects, %.1f MiB across %d nodes\n",
		st.Objects, float64(st.UsedBytes)/(1<<20), st.LiveNodes)

	// Fail two nodes at once — within the fault tolerance, everything
	// stays readable even before any rebuild runs.
	for _, n := range []int{3, 11} {
		if err := sys.FailNode(n); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("failed nodes 3 and 11: %d objects unreadable\n", len(sys.CheckAll()))

	// Distributed rebuild restores full redundancy onto spare capacity.
	stats, err := sys.Rebuild()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rebuild: %d shards regenerated, %.1f MiB moved, %d objects lost\n",
		stats.ShardsRebuilt, float64(stats.BytesMoved)/(1<<20), stats.ObjectsLost)

	// Two further failures (fail-in-place continues) — still safe because
	// redundancy was restored.
	if err := sys.FailNode(7); err != nil {
		log.Fatal(err)
	}
	if err := sys.FailDrive(5, 2); err != nil {
		log.Fatal(err)
	}
	bad := sys.CheckAll()
	fmt.Printf("failed node 7 and drive (5,2) after rebuild: %d objects unreadable\n", len(bad))

	// Verify content integrity through the erasure decode path.
	corrupted := 0
	for id, want := range payloads {
		got, err := sys.Get(id)
		if err != nil || !bytes.Equal(got, want) {
			corrupted++
		}
	}
	fmt.Printf("content check: %d corrupted of %d\n", corrupted, len(payloads))

	final := sys.Stats()
	fmt.Printf("final state: %d live nodes, %d live drives, %.1f MiB spare left\n",
		final.LiveNodes, final.LiveDrives, float64(final.SpareBytes)/(1<<20))
}
