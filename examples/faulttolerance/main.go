// Fault-tolerance explorer: the paper prints closed forms for fault
// tolerance 1–3; its appendix proves a general-k theorem. This example
// evaluates both the theorem and the exact solutions out to k = 7, showing
// how far each extra parity element buys reliability — and where the
// approximation wobbles (k = 1 at baseline, where the h_N parameter
// exceeds 1; see DESIGN.md). The exact numbers use the appendix's
// determinant recursion in cancellation-free form (MethodExactStable),
// which stays accurate where a dense solve of the 2^(k+1)-1-state chain
// breaks down.
package main

import (
	"fmt"
	"log"

	nsr "repro"
)

func main() {
	p := nsr.Baseline()
	target := nsr.PaperTarget()

	fmt.Println("no internal RAID, erasure code fault tolerance k across nodes")
	fmt.Printf("%3s  %16s  %16s  %10s  %14s  %6s\n",
		"k", "closed form (h)", "exact stable (h)", "rel diff", "events/PB-yr", "meets")
	for k := 1; k <= 7; k++ {
		cfg := nsr.Config{Internal: nsr.InternalNone, NodeFaultTolerance: k}
		cf, err := nsr.Analyze(p, cfg, nsr.MethodClosedForm)
		if err != nil {
			log.Fatal(err)
		}
		// The cancellation-free appendix recursion stays accurate where
		// the dense chain solve (MethodExactChain) exhausts float64
		// around k = 6.
		ex, err := nsr.Analyze(p, cfg, nsr.MethodExactStable)
		if err != nil {
			log.Fatal(err)
		}
		rel := (cf.MTTDLHours - ex.MTTDLHours) / ex.MTTDLHours
		fmt.Printf("%3d  %16.4g  %16.4g  %+9.1f%%  %14.3g  %6v\n",
			k, cf.MTTDLHours, ex.MTTDLHours, 100*rel,
			ex.EventsPerPBYear, target.Meets(ex))
	}
	fmt.Println("\neach +1 of fault tolerance buys ~3-4 orders of magnitude at baseline;")
	fmt.Println("the k=1 closed form understates MTTDL because its uncorrectable-error")
	fmt.Println("parameter h_N ≈ 2.0 is outside [0,1] at the paper's baseline.")
}
