// Scrub policy: explore the latent-sector-fault extension analytically,
// then demonstrate the same mechanism end to end on the executable brick
// store — corruption is detected by checksums, repaired through the
// erasure code, and a timely scrub prevents latent faults from
// compounding with hardware failures.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/params"
	"repro/internal/scrub"
	"repro/internal/storage"
)

func main() {
	p := params.Baseline()
	rho := 1.0 / params.HoursPerYear // ~1 latent fault per drive-year

	// Analytic: reliability vs scrub interval.
	table, err := experiments.AblationScrub(p, rho)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table)

	min, err := scrub.MinUsefulInterval(p, rho, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scrubbing faster than every %.0f h (%.1f days) buys <10%% further improvement\n\n",
		min, min/24)

	// The recommended configuration under weekly vs yearly scrubs.
	cfg := core.Config{Internal: core.InternalNone, NodeFaultTolerance: 2}
	for _, interval := range []float64{168, params.HoursPerYear} {
		r, err := scrub.Analyze(p, cfg,
			scrub.Options{LatentFaultsPerDriveHour: rho, ScrubIntervalHours: interval},
			core.MethodClosedForm)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s, scrub every %6.0f h: %.3g events/PB-yr\n",
			cfg, interval, r.EventsPerPBYear)
	}

	// Executable: the same story on the brick store.
	sys, err := storage.NewSystem(storage.Config{
		Nodes: 16, DrivesPerNode: 4,
		RedundancySetSize: 8, FaultTolerance: 2,
		DriveCapacityBytes: 16 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := sys.Put(fmt.Sprintf("obj-%02d", i), make([]byte, 32<<10)); err != nil {
			log.Fatal(err)
		}
	}
	// Latent faults develop silently (two of them — the injector targets
	// the lexicographically first object on each drive, so staying within
	// the fault tolerance keeps even a worst-case double hit repairable)...
	for n := 0; n < 2; n++ {
		if _, err := sys.InjectLatentFault(n, 0); err != nil {
			log.Fatal(err)
		}
	}
	// ...the scrubber finds and repairs them while redundancy is ample...
	stats, err := sys.Scrub()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbrick store scrub: %d shards checked, %d latent faults repaired, %d objects lost\n",
		stats.ShardsChecked, stats.FaultsRepaired, stats.ObjectsLost)

	// ...so subsequent hardware failures stay within the fault tolerance.
	if err := sys.FailNode(2); err != nil {
		log.Fatal(err)
	}
	if err := sys.FailNode(9); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after 2 node failures: %d objects unreadable\n", len(sys.CheckAll()))
}
