// Advisor: the FT 2 no-internal-RAID configuration misses the paper's
// target by a factor of ~1.65 at baseline. This example asks the model
// what single-parameter change would fix it — and, for the recommended
// FT 2 + RAID 5 configuration, how much component-quality headroom the
// 361× margin really buys. It finishes with the chain-level view: which
// individual Markov transitions the MTTDL is most sensitive to.
package main

import (
	"fmt"
	"log"

	"repro/internal/closedform"
	"repro/internal/core"
	"repro/internal/markov"
	"repro/internal/model"
	"repro/internal/params"
	"repro/internal/rebuild"
)

func main() {
	p := params.Baseline()
	target := core.PaperTarget()

	printAdvice := func(cfg core.Config) {
		r, err := core.Analyze(p, cfg, core.MethodClosedForm)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %.3g events/PB-yr (target %.2g, margin %.2f×)\n",
			cfg, r.EventsPerPBYear, target.EventsPerPBYear, target.Margin(r))
		advice, err := core.Advise(p, cfg, target, core.MethodClosedForm)
		if err != nil {
			log.Fatal(err)
		}
		passing := target.Meets(r)
		for _, a := range advice {
			if !a.Achievable {
				fmt.Printf("  %-24s elasticity %+5.2f — no single-parameter path to the target boundary\n",
					a.Parameter, a.Elasticity)
				continue
			}
			story := "change to %.2f× current to hit the target"
			if passing {
				story = "headroom: tolerates %.2f× current before losing the target"
			}
			fmt.Printf("  %-24s elasticity %+5.2f — "+story+"\n",
				a.Parameter, a.Elasticity, a.RequiredFactor)
		}
		fmt.Println()
	}

	printAdvice(core.Config{Internal: core.InternalNone, NodeFaultTolerance: 2})
	printAdvice(core.Config{Internal: core.InternalRAID5, NodeFaultTolerance: 2})

	// Chain-level sensitivities: which transitions dominate MTTDL.
	rates := rebuild.Compute(p, 2)
	in := closedform.NIRInputs{
		N: p.NodeSetSize, R: p.RedundancySetSize, D: p.DrivesPerNode,
		LambdaN: p.NodeFailureRate(), LambdaD: p.DriveFailureRate(),
		MuN: rates.NodeRebuild, MuD: rates.DriveRebuild, CHER: p.CHER(),
	}
	sens, err := markov.RateSensitivities(model.NIRChain(in, 2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("most influential transitions of the FT2-NIR chain (d log MTTDL / d log rate):")
	for i, s := range sens {
		if i == 6 {
			break
		}
		fmt.Printf("  %-4s → %-4s  rate %.3g/h  elasticity %+.3f\n", s.From, s.To, s.Rate, s.Elasticity)
	}
}
