// Simulation validation: demonstrate both simulators against the exact
// chain solutions — the full-system discrete-event simulator in an
// accelerated-failure regime, and the rare-event (balanced failure
// biasing) estimator on a baseline-strength chain.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/closedform"
	"repro/internal/markov"
	"repro/internal/model"
	"repro/internal/sim"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Part 1: accelerated-failure DES vs exact chain.
	sc := sim.Scenario{
		N: 8, R: 4, D: 3, T: 1,
		LambdaN: 1e-3, LambdaD: 2e-3, MuN: 2, MuD: 5,
		CHER: 0.01, Repair: sim.RepairExponential,
	}
	in := closedform.NIRInputs{
		N: sc.N, R: sc.R, D: sc.D,
		LambdaN: sc.LambdaN, LambdaD: sc.LambdaD,
		MuN: sc.MuN, MuD: sc.MuD, CHER: sc.CHER,
	}
	chain := model.NIRChain(in, sc.T)
	exact, err := markov.MTTA(chain)
	if err != nil {
		log.Fatal(err)
	}
	est, err := sim.EstimateMTTDL(sc, rng, 3000, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("accelerated regime, FT 1, no internal RAID:")
	fmt.Printf("  exact chain MTTDL:   %.4g h\n", exact)
	fmt.Printf("  full-system DES:     %.4g ± %.2g h (%d trials)\n",
		est.MeanHours, 1.96*est.StdErr, est.Trials)

	// Part 2: rare-event estimation where naive simulation would need
	// ~10^5 repair cycles per loss event.
	rare := closedform.NIRInputs{
		N: 32, R: 8, D: 8,
		LambdaN: 2.5e-6, LambdaD: 3.3e-6,
		MuN: 0.25, MuD: 2,
		CHER: 0.024,
	}
	rareChain := model.NIRChain(rare, 2)
	rareExact, err := markov.MTTA(rareChain)
	if err != nil {
		log.Fatal(err)
	}
	biased, err := sim.EstimateMTTABiased(rareChain, rng, 50_000, 0.5, sim.RepairThreshold(rareChain))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbaseline-strength regime, FT 2, no internal RAID:")
	fmt.Printf("  exact chain MTTDL:   %.4g h (≈%.0f thousand years)\n",
		rareExact, rareExact/8766/1000)
	fmt.Printf("  biased estimator:    %.4g ± %.2g h (%d cycles, loss prob/cycle %.3g)\n",
		biased.MTTA, 1.96*biased.StdErr, biased.Cycles, biased.CycleLossProbability)
}
