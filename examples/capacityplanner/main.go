// Capacity planner: given a reliability target and fleet parameters, rank
// every redundancy configuration that meets the target by its usable
// capacity (redundancy overhead differs between configurations), the way a
// storage architect would choose a scheme.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	nsr "repro"
)

func main() {
	target := flag.Float64("target", 2e-3, "max data-loss events per PB-year")
	nodes := flag.Int("nodes", 64, "node set size")
	drives := flag.Int("drives", 12, "drives per node")
	driveMTTF := flag.Float64("drive-mttf", 300_000, "drive MTTF (hours)")
	nodeMTTF := flag.Float64("node-mttf", 400_000, "node MTTF (hours)")
	flag.Parse()

	p := nsr.Baseline()
	p.NodeSetSize = *nodes
	p.DrivesPerNode = *drives
	p.DriveMTTFHours = *driveMTTF
	p.NodeMTTFHours = *nodeMTTF

	goal := nsr.Target{EventsPerPBYear: *target}

	results, err := nsr.AnalyzeAll(p, nsr.BaselineConfigs(), nsr.MethodClosedForm)
	if err != nil {
		log.Fatal(err)
	}
	var qualifying []nsr.Result
	for _, r := range results {
		if goal.Meets(r) {
			qualifying = append(qualifying, r)
		}
	}
	if len(qualifying) == 0 {
		fmt.Printf("no configuration meets %.2g events/PB-year with these parameters\n", *target)
		fmt.Println("try higher fault tolerance, better drives, or larger rebuild blocks")
		return
	}
	// Rank by usable capacity (descending), i.e. least redundancy
	// overhead that still meets the goal.
	sort.Slice(qualifying, func(i, j int) bool {
		return qualifying[i].LogicalCapacityPB > qualifying[j].LogicalCapacityPB
	})

	fmt.Printf("configurations meeting %.2g events/PB-year (best capacity first):\n\n", *target)
	fmt.Printf("%-24s  %12s  %14s  %8s\n", "configuration", "capacity PB", "events/PB-yr", "margin")
	for _, r := range qualifying {
		fmt.Printf("%-24s  %12.4f  %14.3g  %7.0f×\n",
			r.Config, r.LogicalCapacityPB, r.EventsPerPBYear, goal.Margin(r))
	}
	best := qualifying[0]
	fmt.Printf("\nrecommendation: %s — %.1f%% of raw capacity usable, %0.f× margin\n",
		best.Config,
		100*best.LogicalCapacityPB*1e15/(float64(*nodes)*float64(*drives)*p.DriveCapacityBytes),
		goal.Margin(best))
}
