package nsr

// Whole-stack integration: the analytic pipeline (Markov chain → transient
// solution) and the executable pipeline (synthetic failure trace → brick
// store with erasure coding → replay with a quiet-period rebuild window)
// are two independent implementations of the same overlap physics. This
// test checks that they predict compatible mission loss probabilities in
// an accelerated regime where both are measurable.
//
// Alignment: the replay repairs all outstanding failures at the first
// inter-event gap of at least W. Under Poisson arrivals of total rate λ_tot
// the expected outstanding time of an isolated failure is then
// (e^{λ_tot·W} - 1)/λ_tot, so the comparator chain uses that as its mean
// repair time for both node and drive failures.

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/closedform"
	"repro/internal/markov"
	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/trace"
)

func TestWholeStackMissionLossProbability(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-stack Monte Carlo is slow")
	}
	// Node failures only (drive failures would need full stripe-space
	// coverage — d^R placements — which no finite object population
	// provides; see EXPERIMENTS.md on the even-distribution assumption).
	// Renewal traces keep the failure intensity constant, matching the
	// chain's fixed N.
	const (
		nodes   = 16
		drives  = 4
		rSet    = 8
		ft      = 2
		mttf    = 20_000.0 // node MTTF, hours
		mission = 17_532.0 // 2 years
		window  = 200.0    // replay rebuild window, hours
	)
	lambda := 1 / mttf
	lambdaTot := float64(nodes) * lambda
	// Effective repair time of the quiet-gap policy under Poisson
	// arrivals.
	repairHours := (math.Exp(lambdaTot*window) - 1) / lambdaTot

	in := closedform.NIRInputs{
		N: nodes, R: rSet, D: drives,
		LambdaN: lambda, LambdaD: 1e-15,
		MuN: 1 / repairHours, MuD: 1 / repairHours,
		CHER: 0,
	}
	chain := model.NIRChain(in, ft)
	analytic, err := markov.AbsorbedProbabilityByTime(chain, mission, markov.TransientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if analytic < 0.05 || analytic > 0.9 {
		t.Fatalf("regime miscalibrated: analytic P(loss) = %v", analytic)
	}

	const traces = 160
	losses := 0
	for seed := int64(0); seed < traces; seed++ {
		tr, err := trace.Generate(trace.GenerateOptions{
			Nodes: nodes, DrivesPerNode: drives,
			NodeMTTFHours:  mttf,
			DriveMTTFHours: 1e15, // node failures only
			HorizonHours:   mission,
			Seed:           seed,
			Renewals:       true, // constant failure intensity, like the chain
		})
		if err != nil {
			t.Fatal(err)
		}
		sys, err := storage.NewSystem(storage.Config{
			Nodes: nodes, DrivesPerNode: drives,
			RedundancySetSize:  rSet,
			FaultTolerance:     ft,
			DriveCapacityBytes: 4 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			if err := sys.Put(fmt.Sprintf("obj-%02d", i), make([]byte, 4<<10)); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := trace.Replay(tr, sys, trace.Policy{
			RebuildWindowHours: window,
			ReplenishNodes:     true, // the analytic models' constant-N assumption
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.ObjectsLost > 0 || rep.UnreadableAtEnd > 0 {
			losses++
		}
	}
	mc := float64(losses) / traces

	// Two independent stacks with remaining second-order differences
	// (batched vs per-failure repair, LIFO chain structure, finite object
	// population, same-node drive collisions): require agreement within a
	// factor of 2.5.
	ratio := mc / analytic
	t.Logf("analytic P(loss) = %.3f, trace/storage Monte Carlo = %.3f (ratio %.2f)", analytic, mc, ratio)
	if mc == 0 {
		t.Fatalf("no losses in %d traces; analytic predicts %.3f", traces, analytic)
	}
	if ratio < 1/2.5 || ratio > 2.5 {
		t.Errorf("stacks disagree: analytic %.3f vs Monte Carlo %.3f", analytic, mc)
	}
}
