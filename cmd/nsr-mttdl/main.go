// Command nsr-mttdl analyzes one redundancy configuration and prints the
// result as JSON — the scripting-friendly entry point.
//
// Usage:
//
//	nsr-mttdl [-internal none|raid5|raid6] [-ft 2] [-method closed-form]
//	          [-node-mttf h] [-drive-mttf h] [-n 64] [-r 8] [-d 12]
//	          [-block bytes] [-link gbps]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/markov"
	"repro/internal/obs"
	"repro/internal/params"
	"repro/internal/rebuild"
	"repro/internal/version"
)

// output is the JSON document printed on success.
type output struct {
	Configuration   string  `json:"configuration"`
	Method          string  `json:"method"`
	MTTDLHours      float64 `json:"mttdl_hours"`
	MTTDLYears      float64 `json:"mttdl_years"`
	EventsPerPBYear float64 `json:"events_per_pb_year"`
	CapacityPB      float64 `json:"logical_capacity_pb"`
	MeetsTarget     bool    `json:"meets_paper_target"`
	TargetMargin    float64 `json:"target_margin"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "nsr-mttdl:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("nsr-mttdl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	p := params.Baseline()
	internal := fs.String("internal", "raid5", "internal redundancy: none, raid5 or raid6")
	ft := fs.Int("ft", 2, "inter-node fault tolerance")
	methodName := fs.String("method", "closed-form", "closed-form, exact-chain or exact-stable")
	fs.Float64Var(&p.NodeMTTFHours, "node-mttf", p.NodeMTTFHours, "node MTTF in hours")
	fs.Float64Var(&p.DriveMTTFHours, "drive-mttf", p.DriveMTTFHours, "drive MTTF in hours")
	fs.IntVar(&p.NodeSetSize, "n", p.NodeSetSize, "node set size")
	fs.IntVar(&p.RedundancySetSize, "r", p.RedundancySetSize, "redundancy set size")
	fs.IntVar(&p.DrivesPerNode, "d", p.DrivesPerNode, "drives per node")
	fs.Float64Var(&p.RebuildCommandBytes, "block", p.RebuildCommandBytes, "rebuild command size in bytes")
	fs.Float64Var(&p.LinkSpeedGbps, "link", p.LinkSpeedGbps, "link speed in Gb/s")
	oflags := obs.AddFlags(fs)
	showVersion := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		version.Print(stdout, "nsr-mttdl")
		return nil
	}
	sess, err := oflags.Start()
	if err != nil {
		return err
	}
	if sess.Registry != nil {
		markov.Instrument(sess.Registry)
		linalg.Instrument(sess.Registry)
		rebuild.Instrument(sess.Registry)
	}

	var ir core.InternalRedundancy
	switch *internal {
	case "none":
		ir = core.InternalNone
	case "raid5":
		ir = core.InternalRAID5
	case "raid6":
		ir = core.InternalRAID6
	default:
		return fmt.Errorf("unknown internal redundancy %q", *internal)
	}
	var method core.Method
	switch *methodName {
	case "closed-form":
		method = core.MethodClosedForm
	case "exact-chain":
		method = core.MethodExactChain
	case "exact-stable":
		method = core.MethodExactStable
	default:
		return fmt.Errorf("unknown method %q", *methodName)
	}
	cfg := core.Config{Internal: ir, NodeFaultTolerance: *ft}
	ctx, root := sess.Trace(context.Background(), "nsr-mttdl")
	r, err := core.AnalyzeCtx(ctx, p, cfg, method)
	root.End()
	if err != nil {
		sess.Finish() //nolint:errcheck // the analysis error wins
		return err
	}
	target := core.PaperTarget()
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	encErr := enc.Encode(output{
		Configuration:   cfg.String(),
		Method:          method.String(),
		MTTDLHours:      r.MTTDLHours,
		MTTDLYears:      r.MTTDLHours / params.HoursPerYear,
		EventsPerPBYear: r.EventsPerPBYear,
		CapacityPB:      r.LogicalCapacityPB,
		MeetsTarget:     target.Meets(r),
		TargetMargin:    target.Margin(r),
	})
	if err := sess.Finish(); encErr == nil {
		encErr = err
	}
	return encErr
}
