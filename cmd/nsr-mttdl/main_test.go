package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestRunGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-internal", "raid5", "-ft", "2", "-method", "exact-chain"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v (stderr %q)", err, stderr.String())
	}
	checkGolden(t, "raid5_ft2_exact", stdout.Bytes())
}

func TestRunEmitsValidJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	var out output
	if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
		t.Fatalf("stdout is not JSON: %v\n%s", err, stdout.String())
	}
	if out.MTTDLHours <= 0 || out.Configuration == "" {
		t.Errorf("implausible output %+v", out)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for name, args := range map[string][]string{
		"unknown internal": {"-internal", "raid9"},
		"unknown method":   {"-method", "psychic"},
		"undefined flag":   {"-no-such-flag"},
	} {
		var stdout, stderr bytes.Buffer
		err := run(args, &stdout, &stderr)
		if err == nil {
			t.Errorf("%s: run accepted %v", name, args)
		}
	}
}

func TestUsageGoesToStderr(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-h"}, &stdout, &stderr); err != flag.ErrHelp {
		t.Fatalf("run -h = %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(stderr.String(), "-internal") {
		t.Error("usage text did not land on stderr")
	}
	if stdout.Len() != 0 {
		t.Errorf("usage leaked to stdout: %q", stdout.String())
	}
}
