package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestRunJSONAndCSV(t *testing.T) {
	defer core.SetMaxWorkers(0)
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	// Two ablation trials keep the report fast; the tables' structure is
	// what the test pins down, not the Monte Carlo values.
	err := run([]string{"-json", "-trials", "2", "-csv-dir", dir, "-workers", "1"}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v (stderr %q)", err, stderr.String())
	}
	// Stdout is "wrote N CSV tables..." followed by the JSON document.
	out := stdout.String()
	idx := strings.IndexByte(out, '{')
	if idx < 0 {
		t.Fatalf("no JSON document on stdout:\n%.400s", out)
	}
	var doc struct {
		Tables []struct {
			ID      string     `json:"id"`
			Columns []string   `json:"columns"`
			Rows    [][]string `json:"rows"`
		} `json:"tables"`
	}
	if err := json.Unmarshal([]byte(out[idx:]), &doc); err != nil {
		t.Fatalf("stdout is not a JSON table document: %v", err)
	}
	tables := doc.Tables
	if len(tables) == 0 {
		t.Fatal("no tables emitted")
	}
	seen := map[string]bool{}
	for _, tb := range tables {
		seen[tb.ID] = true
		if len(tb.Rows) == 0 {
			t.Errorf("table %s has no rows", tb.ID)
		}
	}
	if !seen["fig13"] {
		t.Errorf("baseline table fig13 missing; got %v", seen)
	}
	if matches, _ := filepath.Glob(filepath.Join(dir, "*.csv")); len(matches) != len(tables) {
		t.Errorf("CSV dir holds %d files, JSON has %d tables", len(matches), len(tables))
	}
}

func TestRunRejectsNegativeWorkers(t *testing.T) {
	defer core.SetMaxWorkers(0)
	var stdout, stderr bytes.Buffer
	err := run([]string{"-workers", "-1"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "negative") {
		t.Errorf("run -workers -1 = %v, want a negative-workers error", err)
	}
}
