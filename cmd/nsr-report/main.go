// Command nsr-report regenerates every table and figure of the paper's
// evaluation in one pass — the data backing EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/params"
	"repro/internal/rebuild"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nsr-report:", err)
		os.Exit(1)
	}
}

func run() error {
	trials := flag.Int("trials", 1500, "simulation trials for the model-assumption ablation")
	asJSON := flag.Bool("json", false, "emit all tables as a JSON document instead of text")
	csvDir := flag.String("csv-dir", "", "also write each table to <dir>/<id>.csv")
	workers := flag.Int("workers", 0, "concurrent analyses per sweep (0 = all CPUs, 1 = serial; results are identical at any setting)")
	flag.Parse()
	core.SetMaxWorkers(*workers)
	p := params.Baseline()

	if *asJSON || *csvDir != "" {
		tables, err := experiments.All(p)
		if err != nil {
			return err
		}
		ablations, err := experiments.Ablations(p, *trials, 1)
		if err != nil {
			return err
		}
		all := append(tables, ablations...)
		if *csvDir != "" {
			if err := experiments.WriteCSVDir(*csvDir, all); err != nil {
				return err
			}
			fmt.Printf("wrote %d CSV tables to %s\n", len(all), *csvDir)
		}
		if *asJSON {
			data, err := experiments.EncodeJSON(all)
			if err != nil {
				return err
			}
			if _, err := os.Stdout.Write(data); err != nil {
				return err
			}
		}
		return nil
	}

	fmt.Println("Reproduction report: Reliability for Networked Storage Nodes (DSN 2006)")
	fmt.Println()
	fmt.Printf("baseline: N=%d R=%d d=%d, node MTTF %.0f h, drive MTTF %.0f h, C=%.0f GB\n",
		p.NodeSetSize, p.RedundancySetSize, p.DrivesPerNode,
		p.NodeMTTFHours, p.DriveMTTFHours, p.DriveCapacityBytes/params.GB)
	rates := rebuild.Compute(p, 2)
	nodeH, nodeB := rebuild.NodeRebuildTimeHours(p, 2)
	fmt.Printf("rebuild model (FT 2): node rebuild %.2f h (%s-limited), drive rebuild %.2f h, restripe %.2f h\n",
		nodeH, nodeB, 1/rates.DriveRebuild, 1/rates.Restripe)
	fmt.Printf("link-speed crossover: %.2f Gb/s (paper: ~3 Gb/s)\n", rebuild.CrossoverLinkSpeedGbps(p, 2))
	fmt.Println()

	tables, err := experiments.All(p)
	if err != nil {
		return err
	}
	for _, t := range tables {
		fmt.Println(t)
	}

	fmt.Println("--- ablations beyond the paper ---")
	fmt.Println()
	ablations, err := experiments.Ablations(p, *trials, 1)
	if err != nil {
		return err
	}
	for _, t := range ablations {
		fmt.Println(t)
	}

	fmt.Println("--- degraded-mode exposure (exact chains) ---")
	for _, cfg := range core.SensitivityConfigs() {
		exp, err := core.Exposure(p, cfg)
		if err != nil {
			return err
		}
		fmt.Println(exp)
	}
	fmt.Println()

	claims, err := experiments.ClaimsTable(p)
	if err != nil {
		return err
	}
	fmt.Println(claims)
	return nil
}
