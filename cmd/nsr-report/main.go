// Command nsr-report regenerates every table and figure of the paper's
// evaluation in one pass — the data backing EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/params"
	"repro/internal/rebuild"
	"repro/internal/version"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "nsr-report:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("nsr-report", flag.ContinueOnError)
	fs.SetOutput(stderr)
	trials := fs.Int("trials", 1500, "simulation trials for the model-assumption ablation")
	asJSON := fs.Bool("json", false, "emit all tables as a JSON document instead of text")
	csvDir := fs.String("csv-dir", "", "also write each table to <dir>/<id>.csv")
	workers := fs.Int("workers", 0, "concurrent analyses per sweep (0 = all CPUs, 1 = serial; results are identical at any setting)")
	showVersion := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		version.Print(stdout, "nsr-report")
		return nil
	}
	if err := core.ValidateWorkers(*workers); err != nil {
		return err
	}
	core.SetMaxWorkers(*workers)
	p := params.Baseline()

	if *asJSON || *csvDir != "" {
		tables, err := experiments.All(p)
		if err != nil {
			return err
		}
		ablations, err := experiments.Ablations(p, *trials, 1)
		if err != nil {
			return err
		}
		all := append(tables, ablations...)
		if *csvDir != "" {
			if err := experiments.WriteCSVDir(*csvDir, all); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %d CSV tables to %s\n", len(all), *csvDir)
		}
		if *asJSON {
			data, err := experiments.EncodeJSON(all)
			if err != nil {
				return err
			}
			if _, err := stdout.Write(data); err != nil {
				return err
			}
		}
		return nil
	}

	fmt.Fprintln(stdout, "Reproduction report: Reliability for Networked Storage Nodes (DSN 2006)")
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "baseline: N=%d R=%d d=%d, node MTTF %.0f h, drive MTTF %.0f h, C=%.0f GB\n",
		p.NodeSetSize, p.RedundancySetSize, p.DrivesPerNode,
		p.NodeMTTFHours, p.DriveMTTFHours, p.DriveCapacityBytes/params.GB)
	rates := rebuild.Compute(p, 2)
	nodeH, nodeB := rebuild.NodeRebuildTimeHours(p, 2)
	fmt.Fprintf(stdout, "rebuild model (FT 2): node rebuild %.2f h (%s-limited), drive rebuild %.2f h, restripe %.2f h\n",
		nodeH, nodeB, 1/rates.DriveRebuild, 1/rates.Restripe)
	fmt.Fprintf(stdout, "link-speed crossover: %.2f Gb/s (paper: ~3 Gb/s)\n", rebuild.CrossoverLinkSpeedGbps(p, 2))
	fmt.Fprintln(stdout)

	tables, err := experiments.All(p)
	if err != nil {
		return err
	}
	for _, t := range tables {
		fmt.Fprintln(stdout, t)
	}

	fmt.Fprintln(stdout, "--- ablations beyond the paper ---")
	fmt.Fprintln(stdout)
	ablations, err := experiments.Ablations(p, *trials, 1)
	if err != nil {
		return err
	}
	for _, t := range ablations {
		fmt.Fprintln(stdout, t)
	}

	fmt.Fprintln(stdout, "--- degraded-mode exposure (exact chains) ---")
	for _, cfg := range core.SensitivityConfigs() {
		exp, err := core.Exposure(p, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, exp)
	}
	fmt.Fprintln(stdout)

	claims, err := experiments.ClaimsTable(p)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, claims)
	return nil
}
