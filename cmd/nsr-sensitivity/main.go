// Command nsr-sensitivity regenerates the paper's Section 7 sensitivity
// analyses (Figures 14–20) for the three surviving configurations.
//
// Usage:
//
//	nsr-sensitivity             # all figures
//	nsr-sensitivity -fig 16     # one figure
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/linalg"
	"repro/internal/markov"
	"repro/internal/obs"
	"repro/internal/params"
	"repro/internal/rebuild"
	"repro/internal/version"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "nsr-sensitivity:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("nsr-sensitivity", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fig := fs.Int("fig", 0, "figure number 14..20 (0 = all)")
	workers := fs.Int("workers", 0, "concurrent analyses per sweep (0 = all CPUs, 1 = serial; results are identical at any setting)")
	batchCells := fs.Int("batch-cells", 0, "cells per batched exact-chain solver chunk (0 = default 256, negative = per-cell path; results are identical at any setting)")
	oflags := obs.AddFlags(fs)
	showVersion := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		version.Print(stdout, "nsr-sensitivity")
		return nil
	}
	if err := core.ValidateWorkers(*workers); err != nil {
		return err
	}
	core.SetMaxWorkers(*workers)
	core.SetBatchCells(*batchCells)
	sess, err := oflags.Start()
	if err != nil {
		return err
	}
	if sess.Registry != nil {
		markov.Instrument(sess.Registry)
		linalg.Instrument(sess.Registry)
		rebuild.Instrument(sess.Registry)
	}
	p := params.Baseline()

	print2 := func(tables []*experiments.Table, err error) error {
		if err != nil {
			return err
		}
		for _, t := range tables {
			fmt.Fprintln(stdout, t)
		}
		return nil
	}
	print1 := func(t *experiments.Table, _ interface{}, err error) error {
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, t)
		return nil
	}

	run := map[int]func() error{
		14: func() error { t, err := experiments.Fig14DriveMTTF(p); return print2(t, err) },
		15: func() error { t, err := experiments.Fig15NodeMTTF(p); return print2(t, err) },
		16: func() error { t, pts, err := experiments.Fig16RebuildBlockSize(p); return print1(t, pts, err) },
		17: func() error { t, pts, err := experiments.Fig17LinkSpeed(p); return print1(t, pts, err) },
		18: func() error { t, pts, err := experiments.Fig18NodeSetSize(p); return print1(t, pts, err) },
		19: func() error { t, pts, err := experiments.Fig19RedundancySetSize(p); return print1(t, pts, err) },
		20: func() error { t, pts, err := experiments.Fig20DrivesPerNode(p); return print1(t, pts, err) },
	}
	var runErr error
	if *fig != 0 {
		fn, ok := run[*fig]
		if !ok {
			runErr = fmt.Errorf("unknown figure %d (valid: 14..20)", *fig)
		} else {
			runErr = fn()
		}
	} else {
		progress := sess.Progress("figures", 7, nil)
		for f := 14; f <= 20 && runErr == nil; f++ {
			runErr = run[f]()
			obs.ProgressAdd(progress, 1)
		}
		obs.ProgressStop(progress)
	}
	if err := sess.Finish(); runErr == nil {
		runErr = err
	}
	return runErr
}
