package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestRunSingleFigure(t *testing.T) {
	defer core.SetMaxWorkers(0)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-fig", "16", "-workers", "1"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v (stderr %q)", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "FIG16") {
		t.Errorf("figure 16 table missing:\n%.400s", stdout.String())
	}
}

func TestRunRejectsUnknownFigure(t *testing.T) {
	defer core.SetMaxWorkers(0)
	var stdout, stderr bytes.Buffer
	err := run([]string{"-fig", "13"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "unknown figure") {
		t.Errorf("run -fig 13 = %v, want unknown-figure error", err)
	}
}

func TestRunRejectsNegativeWorkers(t *testing.T) {
	defer core.SetMaxWorkers(0)
	var stdout, stderr bytes.Buffer
	err := run([]string{"-workers", "-3"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "negative") {
		t.Errorf("run -workers -3 = %v, want a negative-workers error", err)
	}
	if stdout.Len() != 0 {
		t.Errorf("rejected run produced output: %q", stdout.String())
	}
}
