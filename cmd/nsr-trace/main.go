// Command nsr-trace generates, inspects and replays component-failure
// traces against the executable brick store.
//
// Usage:
//
//	nsr-trace -gen -out trace.csv [-nodes 16 -drives 4 -years 5 -seed 1]
//	nsr-trace -stats trace.csv
//	nsr-trace -replay trace.csv [-rebuild=true] [-scrub 720]
//	nsr-trace -montecarlo 200 [-years 20]   # loss fraction across traces
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/params"
	"repro/internal/seedstream"
	"repro/internal/storage"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nsr-trace:", err)
		os.Exit(1)
	}
}

var (
	gen        = flag.Bool("gen", false, "generate a trace")
	out        = flag.String("out", "", "output file for -gen (default stdout)")
	statsFile  = flag.String("stats", "", "print a trace's event statistics")
	replayFile = flag.String("replay", "", "replay a trace against a fresh store")
	monte      = flag.Int("montecarlo", 0, "replay N random traces and report the loss fraction")

	nodes     = flag.Int("nodes", 16, "nodes")
	drives    = flag.Int("drives", 4, "drives per node")
	years     = flag.Float64("years", 5, "mission length in years")
	seed      = flag.Int64("seed", 1, "generation seed (-montecarlo derives trace s's seed from a splitmix64 stream over (seed, s), so traces are reproducible individually and independent even for adjacent base seeds)")
	workers   = flag.Int("workers", 0, "concurrent trace replays for -montecarlo (0 = all CPUs; results are identical at any setting)")
	oflags    *obs.Flags
	nodeMTTF  = flag.Float64("node-mttf", 400_000, "node MTTF (hours)")
	driveMTTF = flag.Float64("drive-mttf", 300_000, "drive MTTF (hours)")
	latent    = flag.Float64("latent", 0, "latent faults per drive-hour")
	rebuild   = flag.Bool("rebuild", true, "rebuild after each failure during replay")
	scrubH    = flag.Float64("scrub", 0, "scrub interval during replay (hours, 0 = never)")
	rsetSize  = flag.Int("r", 8, "redundancy set size for replay")
	ft        = flag.Int("ft", 2, "fault tolerance for replay")
)

func options(s int64) trace.GenerateOptions {
	return trace.GenerateOptions{
		Nodes: *nodes, DrivesPerNode: *drives,
		NodeMTTFHours: *nodeMTTF, DriveMTTFHours: *driveMTTF,
		LatentFaultsPerDriveHour: *latent,
		HorizonHours:             *years * params.HoursPerYear,
		Seed:                     s,
	}
}

func newStore() (*storage.System, error) {
	sys, err := storage.NewSystem(storage.Config{
		Nodes: *nodes, DrivesPerNode: *drives,
		RedundancySetSize: *rsetSize, FaultTolerance: *ft,
		DriveCapacityBytes: 8 << 20,
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < 64; i++ {
		if err := sys.Put(fmt.Sprintf("obj-%03d", i), make([]byte, 8<<10)); err != nil {
			return nil, err
		}
	}
	return sys, nil
}

func run() error {
	oflags = obs.AddFlags(flag.CommandLine)
	flag.Parse()
	sess, err := oflags.Start()
	if err != nil {
		return err
	}
	if sess.Registry != nil {
		sess.Registry.SetLabel("seed", strconv.FormatInt(*seed, 10))
	}
	var runErr error
	switch {
	case *gen:
		runErr = runGen()
	case *statsFile != "":
		runErr = runStats(*statsFile)
	case *replayFile != "":
		runErr = runReplay(*replayFile, sess)
	case *monte > 0:
		runErr = runMonteCarlo(*monte, sess)
	default:
		flag.Usage()
		runErr = fmt.Errorf("pick one of -gen, -stats, -replay, -montecarlo")
	}
	if err := sess.Finish(); runErr == nil {
		runErr = err
	}
	return runErr
}

func runGen() error {
	tr, err := trace.Generate(options(*seed))
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generating trace with seed %d\n", *seed)
	if *out == "" {
		return tr.WriteCSV(os.Stdout)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := tr.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	// Close errors matter here: buffered CSV bytes surface only at close.
	return f.Close()
}

func readTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ReadCSV(f)
}

func runStats(path string) error {
	tr, err := readTrace(path)
	if err != nil {
		return err
	}
	st := tr.Stats()
	fmt.Printf("geometry: %d nodes × %d drives, horizon %.0f h\n", tr.Nodes, tr.DrivesPerNode, tr.HorizonHours)
	fmt.Printf("events: %d node failures, %d drive failures, %d latent faults\n",
		st.NodeFailures, st.DriveFailures, st.LatentFaults)
	return nil
}

func runReplay(path string, sess *obs.Session) error {
	tr, err := readTrace(path)
	if err != nil {
		return err
	}
	*nodes, *drives = tr.Nodes, tr.DrivesPerNode
	sys, err := newStore()
	if err != nil {
		return err
	}
	rep, err := trace.Replay(tr, sys, trace.Policy{
		RebuildAfterEachFailure: *rebuild,
		ScrubEveryHours:         *scrubH,
		Obs:                     sess.Registry,
		Hook:                    sess.Hook(),
	})
	if err != nil {
		return err
	}
	fmt.Printf("applied %d events: %d rebuilds (%d shards), %d scrubs (%d latent repairs)\n",
		rep.EventsApplied, rep.Rebuilds, rep.ShardsRebuilt, rep.Scrubs, rep.LatentRepaired)
	fmt.Printf("objects lost: %d; unreadable at end: %d\n", rep.ObjectsLost, rep.UnreadableAtEnd)
	return nil
}

func runMonteCarlo(n int, sess *obs.Session) error {
	// The status closure runs on the progress goroutine, so the tally is
	// atomic.
	var lossTraces, totalEvents atomic.Int64
	progress := sess.Progress("traces", int64(n), func() string {
		return fmt.Sprintf("%d with data loss", lossTraces.Load())
	})
	// Trace s is generated from seedstream.Derive(*seed, s): a pure
	// function of the base seed and the index, so each trace can be
	// regenerated in isolation and the aggregate tallies are identical at
	// any worker count. The registry, JSONL sink and progress counter are
	// all concurrency-safe.
	runTrace := func(s int) error {
		tr, err := trace.Generate(options(seedstream.Derive(*seed, uint64(s))))
		if err != nil {
			return err
		}
		sys, err := newStore()
		if err != nil {
			return err
		}
		rep, err := trace.Replay(tr, sys, trace.Policy{
			RebuildAfterEachFailure: *rebuild,
			ScrubEveryHours:         *scrubH,
			Obs:                     sess.Registry,
			Hook:                    sess.Hook(),
		})
		if err != nil {
			return err
		}
		totalEvents.Add(int64(rep.EventsApplied))
		if rep.UnreadableAtEnd > 0 || rep.ObjectsLost > 0 {
			lossTraces.Add(1)
		}
		obs.ProgressAdd(progress, 1)
		return nil
	}
	w := *workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	var err error
	if w <= 1 {
		for s := 0; s < n && err == nil; s++ {
			if e := runTrace(s); e != nil {
				err = fmt.Errorf("trace %d: %w", s, e)
			}
		}
	} else {
		// Bounded pool reporting the error of the lowest failing trace,
		// so failures too are deterministic across worker counts.
		var (
			next     atomic.Int64
			failed   atomic.Bool
			mu       sync.Mutex
			firstErr error
			firstIdx = n
		)
		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					s := int(next.Add(1)) - 1
					if s >= n {
						return
					}
					if failed.Load() {
						mu.Lock()
						skip := s > firstIdx
						mu.Unlock()
						if skip {
							continue
						}
					}
					if err := runTrace(s); err != nil {
						mu.Lock()
						if s < firstIdx {
							firstIdx = s
							firstErr = fmt.Errorf("trace %d: %w", s, err)
						}
						mu.Unlock()
						failed.Store(true)
					}
				}
			}()
		}
		wg.Wait()
		err = firstErr
	}
	obs.ProgressStop(progress)
	if err != nil {
		return err
	}
	lost := lossTraces.Load()
	fmt.Printf("%d traces × %.1f years (%d nodes × %d drives, FT %d, base seed %d): %d with data loss (%.2f%%), %.1f events/trace\n",
		n, *years, *nodes, *drives, *ft, *seed, lost,
		100*float64(lost)/float64(n), float64(totalEvents.Load())/float64(n))
	return nil
}
