// Command nsr-trace generates, inspects and replays component-failure
// traces against the executable brick store.
//
// Usage:
//
//	nsr-trace -gen -out trace.csv [-nodes 16 -drives 4 -years 5 -seed 1]
//	nsr-trace -stats trace.csv
//	nsr-trace -replay trace.csv [-rebuild=true] [-scrub 720]
//	nsr-trace -montecarlo 200 [-years 20]   # loss fraction across traces
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/params"
	"repro/internal/seedstream"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/version"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "nsr-trace:", err)
		os.Exit(1)
	}
}

// app carries the parsed flags and output streams through the subcommands.
type app struct {
	stdout, stderr io.Writer

	gen        bool
	out        string
	statsFile  string
	replayFile string
	monte      int

	nodes     int
	drives    int
	years     float64
	seed      int64
	workers   int
	nodeMTTF  float64
	driveMTTF float64
	latent    float64
	rebuild   bool
	scrubH    float64
	rsetSize  int
	ft        int
}

func run(args []string, stdout, stderr io.Writer) error {
	a := &app{stdout: stdout, stderr: stderr}
	fs := flag.NewFlagSet("nsr-trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.BoolVar(&a.gen, "gen", false, "generate a trace")
	fs.StringVar(&a.out, "out", "", "output file for -gen (default stdout)")
	fs.StringVar(&a.statsFile, "stats", "", "print a trace's event statistics")
	fs.StringVar(&a.replayFile, "replay", "", "replay a trace against a fresh store")
	fs.IntVar(&a.monte, "montecarlo", 0, "replay N random traces and report the loss fraction")

	fs.IntVar(&a.nodes, "nodes", 16, "nodes")
	fs.IntVar(&a.drives, "drives", 4, "drives per node")
	fs.Float64Var(&a.years, "years", 5, "mission length in years")
	fs.Int64Var(&a.seed, "seed", 1, "generation seed (-montecarlo derives trace s's seed from a splitmix64 stream over (seed, s), so traces are reproducible individually and independent even for adjacent base seeds)")
	fs.IntVar(&a.workers, "workers", 0, "concurrent trace replays for -montecarlo (0 = all CPUs; results are identical at any setting)")
	fs.Float64Var(&a.nodeMTTF, "node-mttf", 400_000, "node MTTF (hours)")
	fs.Float64Var(&a.driveMTTF, "drive-mttf", 300_000, "drive MTTF (hours)")
	fs.Float64Var(&a.latent, "latent", 0, "latent faults per drive-hour")
	fs.BoolVar(&a.rebuild, "rebuild", true, "rebuild after each failure during replay")
	fs.Float64Var(&a.scrubH, "scrub", 0, "scrub interval during replay (hours, 0 = never)")
	fs.IntVar(&a.rsetSize, "r", 8, "redundancy set size for replay")
	fs.IntVar(&a.ft, "ft", 2, "fault tolerance for replay")
	oflags := obs.AddFlags(fs)
	showVersion := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		version.Print(stdout, "nsr-trace")
		return nil
	}
	if err := core.ValidateWorkers(a.workers); err != nil {
		return err
	}
	sess, err := oflags.Start()
	if err != nil {
		return err
	}
	if sess.Registry != nil {
		sess.Registry.SetLabel("seed", strconv.FormatInt(a.seed, 10))
	}
	var runErr error
	switch {
	case a.gen:
		runErr = a.runGen()
	case a.statsFile != "":
		runErr = a.runStats(a.statsFile)
	case a.replayFile != "":
		runErr = a.runReplay(a.replayFile, sess)
	case a.monte > 0:
		runErr = a.runMonteCarlo(a.monte, sess)
	default:
		fs.Usage()
		runErr = fmt.Errorf("pick one of -gen, -stats, -replay, -montecarlo")
	}
	if err := sess.Finish(); runErr == nil {
		runErr = err
	}
	return runErr
}

func (a *app) options(s int64) trace.GenerateOptions {
	return trace.GenerateOptions{
		Nodes: a.nodes, DrivesPerNode: a.drives,
		NodeMTTFHours: a.nodeMTTF, DriveMTTFHours: a.driveMTTF,
		LatentFaultsPerDriveHour: a.latent,
		HorizonHours:             a.years * params.HoursPerYear,
		Seed:                     s,
	}
}

func (a *app) newStore() (*storage.System, error) {
	sys, err := storage.NewSystem(storage.Config{
		Nodes: a.nodes, DrivesPerNode: a.drives,
		RedundancySetSize: a.rsetSize, FaultTolerance: a.ft,
		DriveCapacityBytes: 8 << 20,
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < 64; i++ {
		if err := sys.Put(fmt.Sprintf("obj-%03d", i), make([]byte, 8<<10)); err != nil {
			return nil, err
		}
	}
	return sys, nil
}

func (a *app) runGen() error {
	tr, err := trace.Generate(a.options(a.seed))
	if err != nil {
		return err
	}
	fmt.Fprintf(a.stderr, "generating trace with seed %d\n", a.seed)
	if a.out == "" {
		return tr.WriteCSV(a.stdout)
	}
	f, err := os.Create(a.out)
	if err != nil {
		return err
	}
	if err := tr.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	// Close errors matter here: buffered CSV bytes surface only at close.
	return f.Close()
}

func readTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ReadCSV(f)
}

func (a *app) runStats(path string) error {
	tr, err := readTrace(path)
	if err != nil {
		return err
	}
	st := tr.Stats()
	fmt.Fprintf(a.stdout, "geometry: %d nodes × %d drives, horizon %.0f h\n", tr.Nodes, tr.DrivesPerNode, tr.HorizonHours)
	fmt.Fprintf(a.stdout, "events: %d node failures, %d drive failures, %d latent faults\n",
		st.NodeFailures, st.DriveFailures, st.LatentFaults)
	return nil
}

func (a *app) runReplay(path string, sess *obs.Session) error {
	tr, err := readTrace(path)
	if err != nil {
		return err
	}
	a.nodes, a.drives = tr.Nodes, tr.DrivesPerNode
	sys, err := a.newStore()
	if err != nil {
		return err
	}
	rep, err := trace.Replay(tr, sys, trace.Policy{
		RebuildAfterEachFailure: a.rebuild,
		ScrubEveryHours:         a.scrubH,
		Obs:                     sess.Registry,
		Hook:                    sess.Hook(),
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(a.stdout, "applied %d events: %d rebuilds (%d shards), %d scrubs (%d latent repairs)\n",
		rep.EventsApplied, rep.Rebuilds, rep.ShardsRebuilt, rep.Scrubs, rep.LatentRepaired)
	fmt.Fprintf(a.stdout, "objects lost: %d; unreadable at end: %d\n", rep.ObjectsLost, rep.UnreadableAtEnd)
	return nil
}

func (a *app) runMonteCarlo(n int, sess *obs.Session) error {
	// The status closure runs on the progress goroutine, so the tally is
	// atomic.
	var lossTraces, totalEvents atomic.Int64
	progress := sess.Progress("traces", int64(n), func() string {
		return fmt.Sprintf("%d with data loss", lossTraces.Load())
	})
	// Trace s is generated from seedstream.Derive(seed, s): a pure
	// function of the base seed and the index, so each trace can be
	// regenerated in isolation and the aggregate tallies are identical at
	// any worker count. The registry, JSONL sink and progress counter are
	// all concurrency-safe.
	runTrace := func(s int) error {
		tr, err := trace.Generate(a.options(seedstream.Derive(a.seed, uint64(s))))
		if err != nil {
			return err
		}
		sys, err := a.newStore()
		if err != nil {
			return err
		}
		rep, err := trace.Replay(tr, sys, trace.Policy{
			RebuildAfterEachFailure: a.rebuild,
			ScrubEveryHours:         a.scrubH,
			Obs:                     sess.Registry,
			Hook:                    sess.Hook(),
		})
		if err != nil {
			return err
		}
		totalEvents.Add(int64(rep.EventsApplied))
		if rep.UnreadableAtEnd > 0 || rep.ObjectsLost > 0 {
			lossTraces.Add(1)
		}
		obs.ProgressAdd(progress, 1)
		return nil
	}
	w := a.workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	var err error
	if w <= 1 {
		for s := 0; s < n && err == nil; s++ {
			if e := runTrace(s); e != nil {
				err = fmt.Errorf("trace %d: %w", s, e)
			}
		}
	} else {
		// Bounded pool reporting the error of the lowest failing trace,
		// so failures too are deterministic across worker counts.
		var (
			next     atomic.Int64
			failed   atomic.Bool
			mu       sync.Mutex
			firstErr error
			firstIdx = n
		)
		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					s := int(next.Add(1)) - 1
					if s >= n {
						return
					}
					if failed.Load() {
						mu.Lock()
						skip := s > firstIdx
						mu.Unlock()
						if skip {
							continue
						}
					}
					if err := runTrace(s); err != nil {
						mu.Lock()
						if s < firstIdx {
							firstIdx = s
							firstErr = fmt.Errorf("trace %d: %w", s, err)
						}
						mu.Unlock()
						failed.Store(true)
					}
				}
			}()
		}
		wg.Wait()
		err = firstErr
	}
	obs.ProgressStop(progress)
	if err != nil {
		return err
	}
	lost := lossTraces.Load()
	fmt.Fprintf(a.stdout, "%d traces × %.1f years (%d nodes × %d drives, FT %d, base seed %d): %d with data loss (%.2f%%), %.1f events/trace\n",
		n, a.years, a.nodes, a.drives, a.ft, a.seed, lost,
		100*float64(lost)/float64(n), float64(totalEvents.Load())/float64(n))
	return nil
}
