// Command nsr-trace generates, inspects and replays component-failure
// traces against the executable brick store.
//
// Usage:
//
//	nsr-trace -gen -out trace.csv [-nodes 16 -drives 4 -years 5 -seed 1]
//	nsr-trace -stats trace.csv
//	nsr-trace -replay trace.csv [-rebuild=true] [-scrub 720]
//	nsr-trace -montecarlo 200 [-years 20]   # loss fraction across traces
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/params"
	"repro/internal/storage"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nsr-trace:", err)
		os.Exit(1)
	}
}

var (
	gen        = flag.Bool("gen", false, "generate a trace")
	out        = flag.String("out", "", "output file for -gen (default stdout)")
	statsFile  = flag.String("stats", "", "print a trace's event statistics")
	replayFile = flag.String("replay", "", "replay a trace against a fresh store")
	monte      = flag.Int("montecarlo", 0, "replay N random traces and report the loss fraction")

	nodes     = flag.Int("nodes", 16, "nodes")
	drives    = flag.Int("drives", 4, "drives per node")
	years     = flag.Float64("years", 5, "mission length in years")
	seed      = flag.Int64("seed", 1, "generation seed")
	nodeMTTF  = flag.Float64("node-mttf", 400_000, "node MTTF (hours)")
	driveMTTF = flag.Float64("drive-mttf", 300_000, "drive MTTF (hours)")
	latent    = flag.Float64("latent", 0, "latent faults per drive-hour")
	rebuild   = flag.Bool("rebuild", true, "rebuild after each failure during replay")
	scrubH    = flag.Float64("scrub", 0, "scrub interval during replay (hours, 0 = never)")
	rsetSize  = flag.Int("r", 8, "redundancy set size for replay")
	ft        = flag.Int("ft", 2, "fault tolerance for replay")
)

func options(s int64) trace.GenerateOptions {
	return trace.GenerateOptions{
		Nodes: *nodes, DrivesPerNode: *drives,
		NodeMTTFHours: *nodeMTTF, DriveMTTFHours: *driveMTTF,
		LatentFaultsPerDriveHour: *latent,
		HorizonHours:             *years * params.HoursPerYear,
		Seed:                     s,
	}
}

func newStore() (*storage.System, error) {
	sys, err := storage.NewSystem(storage.Config{
		Nodes: *nodes, DrivesPerNode: *drives,
		RedundancySetSize: *rsetSize, FaultTolerance: *ft,
		DriveCapacityBytes: 8 << 20,
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < 64; i++ {
		if err := sys.Put(fmt.Sprintf("obj-%03d", i), make([]byte, 8<<10)); err != nil {
			return nil, err
		}
	}
	return sys, nil
}

func run() error {
	flag.Parse()
	switch {
	case *gen:
		return runGen()
	case *statsFile != "":
		return runStats(*statsFile)
	case *replayFile != "":
		return runReplay(*replayFile)
	case *monte > 0:
		return runMonteCarlo(*monte)
	default:
		flag.Usage()
		return fmt.Errorf("pick one of -gen, -stats, -replay, -montecarlo")
	}
}

func runGen() error {
	tr, err := trace.Generate(options(*seed))
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return tr.WriteCSV(w)
}

func readTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ReadCSV(f)
}

func runStats(path string) error {
	tr, err := readTrace(path)
	if err != nil {
		return err
	}
	st := tr.Stats()
	fmt.Printf("geometry: %d nodes × %d drives, horizon %.0f h\n", tr.Nodes, tr.DrivesPerNode, tr.HorizonHours)
	fmt.Printf("events: %d node failures, %d drive failures, %d latent faults\n",
		st.NodeFailures, st.DriveFailures, st.LatentFaults)
	return nil
}

func runReplay(path string) error {
	tr, err := readTrace(path)
	if err != nil {
		return err
	}
	*nodes, *drives = tr.Nodes, tr.DrivesPerNode
	sys, err := newStore()
	if err != nil {
		return err
	}
	rep, err := trace.Replay(tr, sys, trace.Policy{
		RebuildAfterEachFailure: *rebuild,
		ScrubEveryHours:         *scrubH,
	})
	if err != nil {
		return err
	}
	fmt.Printf("applied %d events: %d rebuilds (%d shards), %d scrubs (%d latent repairs)\n",
		rep.EventsApplied, rep.Rebuilds, rep.ShardsRebuilt, rep.Scrubs, rep.LatentRepaired)
	fmt.Printf("objects lost: %d; unreadable at end: %d\n", rep.ObjectsLost, rep.UnreadableAtEnd)
	return nil
}

func runMonteCarlo(n int) error {
	lossTraces := 0
	var totalEvents int
	for s := 0; s < n; s++ {
		tr, err := trace.Generate(options(int64(s)))
		if err != nil {
			return err
		}
		sys, err := newStore()
		if err != nil {
			return err
		}
		rep, err := trace.Replay(tr, sys, trace.Policy{
			RebuildAfterEachFailure: *rebuild,
			ScrubEveryHours:         *scrubH,
		})
		if err != nil {
			return err
		}
		totalEvents += rep.EventsApplied
		if rep.UnreadableAtEnd > 0 || rep.ObjectsLost > 0 {
			lossTraces++
		}
	}
	fmt.Printf("%d traces × %.1f years (%d nodes × %d drives, FT %d): %d with data loss (%.2f%%), %.1f events/trace\n",
		n, *years, *nodes, *drives, *ft, lossTraces,
		100*float64(lossTraces)/float64(n), float64(totalEvents)/float64(n))
	return nil
}
