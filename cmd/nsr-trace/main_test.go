package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunGenStatsReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-gen", "-out", path, "-nodes", "8", "-drives", "2",
		"-years", "5", "-node-mttf", "200000", "-drive-mttf", "100000", "-seed", "4"},
		&stdout, &stderr); err != nil {
		t.Fatalf("gen: %v (stderr %q)", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "seed 4") {
		t.Errorf("generation seed not reported on stderr: %q", stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if err := run([]string{"-stats", path}, &stdout, &stderr); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if !strings.Contains(stdout.String(), "geometry: 8 nodes × 2 drives") {
		t.Errorf("stats geometry wrong:\n%s", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	if err := run([]string{"-replay", path, "-r", "4", "-ft", "2"}, &stdout, &stderr); err != nil {
		t.Fatalf("replay: %v", err)
	}
	out := stdout.String()
	if !strings.Contains(out, "applied") || !strings.Contains(out, "objects lost:") {
		t.Errorf("replay report incomplete:\n%s", out)
	}
}

func TestRunGenToStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-gen", "-nodes", "4", "-drives", "2", "-seed", "1"}, &stdout, &stderr); err != nil {
		t.Fatalf("gen: %v", err)
	}
	if !strings.HasPrefix(stdout.String(), "#") && !strings.Contains(stdout.String(), ",") {
		t.Errorf("stdout does not look like a CSV trace:\n%.200s", stdout.String())
	}
}

func TestRunMonteCarloDeterministicAcrossWorkerCounts(t *testing.T) {
	outs := make([]string, 2)
	for i, w := range []string{"1", "4"} {
		var stdout, stderr bytes.Buffer
		if err := run([]string{"-montecarlo", "6", "-nodes", "8", "-drives", "2",
			"-years", "5", "-node-mttf", "200000", "-drive-mttf", "100000",
			"-r", "4", "-ft", "1", "-seed", "2", "-workers", w},
			&stdout, &stderr); err != nil {
			t.Fatalf("workers %s: %v", w, err)
		}
		outs[i] = stdout.String()
	}
	if outs[0] != outs[1] {
		t.Errorf("monte carlo tallies differ between worker counts:\n%s\nvs\n%s", outs[0], outs[1])
	}
	if !strings.Contains(outs[0], "6 traces") {
		t.Errorf("unexpected summary:\n%s", outs[0])
	}
}

func TestRunRequiresASubcommand(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run(nil, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "pick one of") {
		t.Errorf("run with no mode = %v, want usage error", err)
	}
	if !strings.Contains(stderr.String(), "-montecarlo") {
		t.Error("usage text not printed to stderr")
	}
}

func TestRunRejectsNegativeWorkers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-montecarlo", "2", "-workers", "-1"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "negative") {
		t.Errorf("run -workers -1 = %v, want a negative-workers error", err)
	}
}
