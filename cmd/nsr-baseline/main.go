// Command nsr-baseline regenerates Figure 13: the baseline comparison of
// the nine redundancy configurations in data-loss events per PB-year.
//
// Usage:
//
//	nsr-baseline [-exact] [-node-mttf h] [-drive-mttf h] [-n nodes]
//	             [-r set-size] [-d drives] [-target events/PB-yr]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/params"
	"repro/internal/version"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "nsr-baseline:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("nsr-baseline", flag.ContinueOnError)
	fs.SetOutput(stderr)
	p := params.Baseline()
	exact := fs.Bool("exact", false, "solve the exact Markov chains instead of the paper's closed forms")
	fs.Float64Var(&p.NodeMTTFHours, "node-mttf", p.NodeMTTFHours, "node MTTF in hours")
	fs.Float64Var(&p.DriveMTTFHours, "drive-mttf", p.DriveMTTFHours, "drive MTTF in hours")
	fs.IntVar(&p.NodeSetSize, "n", p.NodeSetSize, "node set size N")
	fs.IntVar(&p.RedundancySetSize, "r", p.RedundancySetSize, "redundancy set size R")
	fs.IntVar(&p.DrivesPerNode, "d", p.DrivesPerNode, "drives per node")
	targetRate := fs.Float64("target", core.PaperTarget().EventsPerPBYear, "reliability target in events per PB-year")
	showVersion := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		version.Print(stdout, "nsr-baseline")
		return nil
	}

	method := core.MethodClosedForm
	if *exact {
		method = core.MethodExactChain
	}
	results, err := core.AnalyzeAll(p, core.BaselineConfigs(), method)
	if err != nil {
		return err
	}
	target := core.Target{EventsPerPBYear: *targetRate}
	t := &experiments.Table{
		ID:      "fig13",
		Title:   fmt.Sprintf("Baseline comparison (%s method, target %.2g events/PB-yr)", method, *targetRate),
		Columns: []string{"configuration", "MTTDL (h)", "MTTDL (yr)", "events/PB-yr", "margin", "meets target"},
	}
	for _, r := range results {
		meets := "no"
		if target.Meets(r) {
			meets = "yes"
		}
		t.AddRow(
			r.Config.String(),
			fmt.Sprintf("%.3g", r.MTTDLHours),
			fmt.Sprintf("%.3g", r.MTTDLHours/params.HoursPerYear),
			fmt.Sprintf("%.3g", r.EventsPerPBYear),
			fmt.Sprintf("%.3g", target.Margin(r)),
			meets,
		)
	}
	fmt.Fprint(stdout, t)
	return nil
}
