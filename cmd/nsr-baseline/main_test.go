package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestRunGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v (stderr %q)", err, stderr.String())
	}
	checkGolden(t, "fig13_closed_form", stdout.Bytes())
}

func TestRunExactMethod(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-exact"}, &stdout, &stderr); err != nil {
		t.Fatalf("run -exact: %v", err)
	}
	out := stdout.String()
	if !strings.Contains(out, "exact-chain") {
		t.Errorf("exact run does not announce its method:\n%s", out)
	}
	// All nine baseline configurations must appear.
	for _, cfg := range []string{"FT 1", "FT 2", "FT 3"} {
		if !strings.Contains(out, cfg) {
			t.Errorf("missing %s rows:\n%s", cfg, out)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-r", "not-a-number"}, &stdout, &stderr); err == nil {
		t.Error("run accepted a non-numeric -r")
	}
}
