package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestRunGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-internal", "none", "-ft", "2"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v (stderr %q)", err, stderr.String())
	}
	checkGolden(t, "none_ft2_summary", stdout.Bytes())
}

func TestRunDOT(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-internal", "raid5", "-ft", "1", "-dot"}, &stdout, &stderr); err != nil {
		t.Fatalf("run -dot: %v", err)
	}
	out := stdout.String()
	if !strings.HasPrefix(out, "digraph") || !strings.Contains(out, "->") {
		t.Errorf("not Graphviz dot output:\n%.200s", out)
	}
}

func TestRunSensitivities(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-sens"}, &stdout, &stderr); err != nil {
		t.Fatalf("run -sens: %v", err)
	}
	if !strings.Contains(stdout.String(), "elasticity") {
		t.Errorf("missing sensitivity table:\n%s", stdout.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-internal", "raid0"}, &stdout, &stderr); err == nil {
		t.Error("run accepted raid0")
	}
	if err := run([]string{"-ft", "99"}, &stdout, &stderr); err == nil {
		t.Error("run accepted ft 99")
	}
}
