// Command nsr-chains inspects the Markov chains behind a configuration:
// a structural summary, the dominant degraded states, and optionally the
// full chain in Graphviz dot form.
//
// Usage:
//
//	nsr-chains [-internal none|raid5|raid6] [-ft 2] [-dot]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/closedform"
	"repro/internal/core"
	"repro/internal/markov"
	"repro/internal/model"
	"repro/internal/params"
	"repro/internal/rebuild"
	"repro/internal/version"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "nsr-chains:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("nsr-chains", flag.ContinueOnError)
	fs.SetOutput(stderr)
	internal := fs.String("internal", "none", "internal redundancy: none, raid5 or raid6")
	ft := fs.Int("ft", 2, "inter-node fault tolerance")
	dot := fs.Bool("dot", false, "emit the chain in Graphviz dot form")
	sens := fs.Bool("sens", false, "print per-transition MTTDL sensitivities (adjoint method)")
	showVersion := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		version.Print(stdout, "nsr-chains")
		return nil
	}

	var ir core.InternalRedundancy
	switch *internal {
	case "none":
		ir = core.InternalNone
	case "raid5":
		ir = core.InternalRAID5
	case "raid6":
		ir = core.InternalRAID6
	default:
		return fmt.Errorf("unknown internal redundancy %q", *internal)
	}
	cfg := core.Config{Internal: ir, NodeFaultTolerance: *ft}
	p := params.Baseline()
	chain, err := buildChain(p, cfg)
	if err != nil {
		return err
	}
	if *dot {
		fmt.Fprint(stdout, chain.DOT(cfg.String()))
		return nil
	}

	s := chain.Summarize()
	fmt.Fprintf(stdout, "%s\n", cfg)
	fmt.Fprintf(stdout, "states: %d (%d transient, %d absorbing), transitions: %d\n",
		s.States, s.Transient, s.Absorbing, s.Transitions)
	fmt.Fprintf(stdout, "rate span: %.3g .. %.3g per hour (stiffness %.3g)\n",
		s.MinRate, s.MaxRate, s.MaxRate/s.MinRate)
	if sp, err := markov.AbsorptionSparseStats(chain); err == nil {
		fmt.Fprintf(stdout, "absorption matrix: %dx%d, %d nonzeros (density %.3g), LU fill-in %d (%.2fx)\n",
			sp.N, sp.N, sp.NNZ, sp.Density, sp.FactorNNZ, sp.FillRatio)
	}

	mttdl, err := markov.MTTA(chain)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "exact MTTDL: %.4g h\n", mttdl)

	top, err := markov.TopStatesByTime(chain, 6)
	if err != nil {
		return err
	}
	visits, err := markov.ExpectedVisits(chain)
	if err != nil {
		return err
	}
	res, err := markov.Absorption(chain)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, "\ndominant states (by expected time before data loss):")
	fmt.Fprintf(stdout, "%-8s  %14s  %16s\n", "state", "time (h)", "expected visits")
	for _, name := range top {
		fmt.Fprintf(stdout, "%-8s  %14.5g  %16.5g\n", name, res.TimeInState[name], visits[name])
	}

	if *sens {
		all, err := markov.RateSensitivities(chain)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "\nmost influential transitions (d log MTTDL / d log rate):")
		fmt.Fprintf(stdout, "%-8s  %-8s  %12s  %12s\n", "from", "to", "rate (/h)", "elasticity")
		for i, s := range all {
			if i == 10 {
				break
			}
			fmt.Fprintf(stdout, "%-8s  %-8s  %12.4g  %+12.4f\n", s.From, s.To, s.Rate, s.Elasticity)
		}
	}
	return nil
}

func buildChain(p params.Parameters, cfg core.Config) (*markov.Chain, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// The same geometry guard core.Analyze applies: the downstream model
	// constructors panic on an FT the redundancy set cannot hold.
	k := cfg.NodeFaultTolerance
	switch {
	case p.NodeSetSize <= k+1:
		return nil, fmt.Errorf("node set size %d too small for fault tolerance %d", p.NodeSetSize, k)
	case p.RedundancySetSize <= k:
		return nil, fmt.Errorf("redundancy set size %d too small for fault tolerance %d", p.RedundancySetSize, k)
	}
	rates := rebuild.Compute(p, cfg.NodeFaultTolerance)
	if cfg.Internal == core.InternalNone {
		in := closedform.NIRInputs{
			N: p.NodeSetSize, R: p.RedundancySetSize, D: p.DrivesPerNode,
			LambdaN: p.NodeFailureRate(), LambdaD: p.DriveFailureRate(),
			MuN: rates.NodeRebuild, MuD: rates.DriveRebuild, CHER: p.CHER(),
		}
		return model.NIRChain(in, cfg.NodeFaultTolerance), nil
	}
	m := cfg.Internal.ParityDrives()
	arr := closedform.ArrayInputs{
		D: p.DrivesPerNode, LambdaD: p.DriveFailureRate(),
		MuD: rates.Restripe, CHER: p.CHER(),
	}
	in := closedform.IRInputs{
		N: p.NodeSetSize, R: p.RedundancySetSize,
		LambdaN:      p.NodeFailureRate(),
		LambdaArray:  closedform.ArrayFailureRate(m, arr),
		LambdaSector: closedform.SectorErrorRate(m, arr),
		MuN:          rates.NodeRebuild,
	}
	return model.IRChain(in, cfg.NodeFaultTolerance), nil
}
