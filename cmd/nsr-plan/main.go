// Command nsr-plan plans redundancy for a brick fleet. By default it
// sizes the fail-in-place over-provisioning of Section 3: how much
// spare capacity a fleet needs to survive a mission without service
// actions, and when spare nodes must be added. With -optimize it
// instead searches the discrete redundancy design space (internal RAID
// level × inter-node fault tolerance × stripe width × spares ×
// utilization × rebuild size) for the exact Pareto frontier on
// (cost, capacity, reliability), using the two-phase prune-then-confirm
// optimizer in internal/plan.
//
// Usage:
//
//	nsr-plan [-years 5] [-max-util 0.97] [-threshold 0.9]
//	nsr-plan -optimize [-target 2e-3] [-budget 0] [-min-capacity-pb 0]
//	         [-node-cost 0] [-top 0] [-json] [-workers 0]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/linalg"
	"repro/internal/markov"
	"repro/internal/obs"
	"repro/internal/params"
	"repro/internal/plan"
	"repro/internal/rebuild"
	"repro/internal/spares"
	"repro/internal/version"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "nsr-plan:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("nsr-plan", flag.ContinueOnError)
	fs.SetOutput(stderr)
	years := fs.Float64("years", 5, "mission length in years")
	maxUtil := fs.Float64("max-util", 0.97, "maximum acceptable utilization at mission end")
	threshold := fs.Float64("threshold", 0.9, "utilization threshold for adding spare nodes")
	optimize := fs.Bool("optimize", false, "search the redundancy design space for the exact Pareto frontier instead of sizing spares")
	target := fs.Float64("target", 0, "reliability target in data-loss events/PB-year (0 = the paper's 2e-3)")
	budget := fs.Float64("budget", 0, "cost budget in drive-equivalents (0 = unbounded)")
	minCapPB := fs.Float64("min-capacity-pb", 0, "minimum logical capacity in PB (0 = no floor)")
	nodeCost := fs.Float64("node-cost", 0, "fixed per-node overhead in drive-equivalents on top of its drives")
	top := fs.Int("top", 0, "show at most this many frontier entries (0 = all)")
	jsonOut := fs.Bool("json", false, "with -optimize, emit the full result as JSON")
	workers := fs.Int("workers", 0, "concurrent exact confirmations (0 = all CPUs, 1 = serial; results are identical at any setting)")
	oflags := obs.AddFlags(fs)
	showVersion := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		version.Print(stdout, "nsr-plan")
		return nil
	}
	// Reject out-of-domain values up front; the negated comparisons also
	// catch NaN, which would otherwise flow silently into the spares math.
	switch {
	case !(*years >= 0):
		return fmt.Errorf("invalid -years %v: must be a non-negative number of years", *years)
	case !(*maxUtil > 0 && *maxUtil <= 1):
		return fmt.Errorf("invalid -max-util %v: must be in (0, 1]", *maxUtil)
	case !(*threshold > 0 && *threshold <= 1):
		return fmt.Errorf("invalid -threshold %v: must be in (0, 1]", *threshold)
	}

	if *optimize {
		cons := plan.Constraints{
			TargetEventsPerPBYear: *target,
			MaxCostDrives:         *budget,
			MinCapacityPB:         *minCapPB,
			NodeCostDrives:        *nodeCost,
		}
		return runOptimize(stdout, cons, plan.Options{Top: *top}, *workers, oflags, *jsonOut)
	}

	p := params.Baseline()
	mission := *years * params.HoursPerYear

	table, err := experiments.SparesPlan(p)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, table)

	u0, err := spares.RequiredInitialUtilization(p, mission, *maxUtil)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "required initial utilization for a %.1f-year mission at ≤%.0f%%: %.1f%%\n",
		*years, 100**maxUtil, 100*u0)

	tCross, err := spares.TimeToUtilization(p, *threshold)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "starting at %.0f%%, utilization crosses %.0f%% after %.1f years — add spare nodes by then\n",
		100*p.CapacityUtilization, 100**threshold, tCross/params.HoursPerYear)
	fmt.Fprintf(stdout, "expected attrition by then: %.1f node failures, %.1f drive failures\n",
		spares.ExpectedNodeFailures(p, tCross), spares.ExpectedDriveFailures(p, tCross))
	return nil
}

// runOptimize runs the design-space search over the stock space around
// the paper's baseline and renders the ranked exact Pareto frontier.
func runOptimize(stdout io.Writer, cons plan.Constraints, opt plan.Options, workers int, oflags *obs.Flags, jsonOut bool) error {
	if err := core.ValidateWorkers(workers); err != nil {
		return err
	}
	core.SetMaxWorkers(workers)
	sess, err := oflags.Start()
	if err != nil {
		return err
	}
	if sess.Registry != nil {
		plan.Instrument(sess.Registry)
		markov.Instrument(sess.Registry)
		linalg.Instrument(sess.Registry)
		rebuild.Instrument(sess.Registry)
	}
	res, runErr := plan.Search(params.Baseline(), plan.DefaultSpace(), cons, opt)
	if runErr == nil {
		if jsonOut {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			runErr = enc.Encode(res)
		} else {
			writeFrontier(stdout, res)
		}
	}
	if err := sess.Finish(); runErr == nil {
		runErr = err
	}
	return runErr
}

// writeFrontier renders the search accounting and the ranked frontier
// as a fixed-width table.
func writeFrontier(w io.Writer, res *plan.Result) {
	st := res.Stats
	fmt.Fprintf(w, "design space: %d candidates — %d infeasible, %d pruned vs target, %d dominated, %d confirmed exactly (prune ratio %.3f, %d topology groups)\n",
		st.Enumerated, st.Infeasible, st.PrunedTarget, st.PrunedDominated, st.Confirmed, st.PruneRatio, st.TopologyGroups)
	fmt.Fprintf(w, "target: %.3g data-loss events/PB-year; exact Pareto frontier: %d configurations", res.TargetEventsPerPBYear, st.FrontierSize)
	if len(res.Frontier) < st.FrontierSize {
		fmt.Fprintf(w, " (showing top %d)", len(res.Frontier))
	}
	fmt.Fprintln(w)
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "#\tinternal\tft\tR\tnodes\tspares\tutil\trebuild\tcost(drives)\tcapacity(PB)\tevents/PB-yr\tmargin")
	for i, c := range res.Frontier {
		fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%d\t%d\t%.2f\t%.0fKiB\t%.0f\t%.2f\t%.3g\t%.1f×\n",
			i+1, c.InternalName, c.FaultTolerance, c.RedundancySetSize, c.NodeSetSize, c.SpareNodes,
			c.Utilization, c.RebuildCommandBytes/params.KiB, c.CostDrives, c.CapacityPB,
			c.ExactEventsPerPBYear, c.MarginVsTarget)
	}
	tw.Flush()
}
