// Command nsr-plan sizes the fail-in-place over-provisioning of Section 3:
// how much spare capacity a brick fleet needs to survive a mission without
// service actions, and when spare nodes must be added.
//
// Usage:
//
//	nsr-plan [-years 5] [-max-util 0.97] [-threshold 0.9]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/params"
	"repro/internal/spares"
	"repro/internal/version"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "nsr-plan:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("nsr-plan", flag.ContinueOnError)
	fs.SetOutput(stderr)
	years := fs.Float64("years", 5, "mission length in years")
	maxUtil := fs.Float64("max-util", 0.97, "maximum acceptable utilization at mission end")
	threshold := fs.Float64("threshold", 0.9, "utilization threshold for adding spare nodes")
	showVersion := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		version.Print(stdout, "nsr-plan")
		return nil
	}

	p := params.Baseline()
	mission := *years * params.HoursPerYear

	table, err := experiments.SparesPlan(p)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, table)

	u0, err := spares.RequiredInitialUtilization(p, mission, *maxUtil)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "required initial utilization for a %.1f-year mission at ≤%.0f%%: %.1f%%\n",
		*years, 100**maxUtil, 100*u0)

	tCross, err := spares.TimeToUtilization(p, *threshold)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "starting at %.0f%%, utilization crosses %.0f%% after %.1f years — add spare nodes by then\n",
		100*p.CapacityUtilization, 100**threshold, tCross/params.HoursPerYear)
	fmt.Fprintf(stdout, "expected attrition by then: %.1f node failures, %.1f drive failures\n",
		spares.ExpectedNodeFailures(p, tCross), spares.ExpectedDriveFailures(p, tCross))
	return nil
}
