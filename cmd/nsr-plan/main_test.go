package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v (stderr %q)", err, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"required initial utilization", "utilization crosses", "expected attrition"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCustomMission(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-years", "10", "-max-util", "0.95"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stdout.String(), "10.0-year mission") {
		t.Errorf("mission length not reflected:\n%s", stdout.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-years", "banana"}, &stdout, &stderr); err == nil {
		t.Error("run accepted a non-numeric -years")
	}
}
