package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/plan"
)

func TestRunSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v (stderr %q)", err, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"required initial utilization", "utilization crosses", "expected attrition"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCustomMission(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-years", "10", "-max-util", "0.95"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stdout.String(), "10.0-year mission") {
		t.Errorf("mission length not reflected:\n%s", stdout.String())
	}
}

// TestRunRejectsBadFlags covers the input-validation contract: values
// outside each flag's domain — including NaN, which every comparison
// chain must be written to catch — are rejected before any math runs.
func TestRunRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"non-numeric years", []string{"-years", "banana"}},
		{"negative years", []string{"-years", "-1"}},
		{"NaN years", []string{"-years", "NaN"}},
		{"zero max-util", []string{"-max-util", "0"}},
		{"max-util above one", []string{"-max-util", "1.5"}},
		{"NaN max-util", []string{"-max-util", "NaN"}},
		{"negative threshold", []string{"-threshold", "-0.2"}},
		{"threshold above one", []string{"-threshold", "2"}},
		{"NaN threshold", []string{"-threshold", "NaN"}},
		{"negative optimize target", []string{"-optimize", "-target", "-1"}},
		{"NaN optimize budget", []string{"-optimize", "-budget", "NaN"}},
		{"negative optimize capacity floor", []string{"-optimize", "-min-capacity-pb", "-3"}},
		{"negative workers", []string{"-optimize", "-workers", "-2"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if err := run(tc.args, &stdout, &stderr); err == nil {
				t.Errorf("run(%v) accepted invalid input; output:\n%s", tc.args, stdout.String())
			}
		})
	}
}

func TestRunOptimizeSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-optimize", "-top", "5"}, &stdout, &stderr); err != nil {
		t.Fatalf("run -optimize: %v (stderr %q)", err, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"design space: 10800 candidates", "exact Pareto frontier", "events/PB-yr", "showing top 5"} {
		if !strings.Contains(out, want) {
			t.Errorf("optimize output missing %q:\n%s", want, out)
		}
	}
}

// TestRunOptimizeJSONDeterministic checks the CLI end of the
// determinism contract: the JSON result is byte-identical between a
// serial run and a parallel one.
func TestRunOptimizeJSONDeterministic(t *testing.T) {
	var serial, parallel, stderr bytes.Buffer
	if err := run([]string{"-optimize", "-json", "-workers", "1"}, &serial, &stderr); err != nil {
		t.Fatalf("run -optimize -workers 1: %v", err)
	}
	if err := run([]string{"-optimize", "-json", "-workers", "3"}, &parallel, &stderr); err != nil {
		t.Fatalf("run -optimize -workers 3: %v", err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Error("JSON output differs between -workers 1 and -workers 3")
	}
	var res plan.Result
	if err := json.Unmarshal(serial.Bytes(), &res); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(res.Frontier) == 0 {
		t.Error("optimize found an empty frontier on the default space")
	}
	if res.Stats.Enumerated != plan.DefaultSpace().Size() {
		t.Errorf("enumerated %d, want %d", res.Stats.Enumerated, plan.DefaultSpace().Size())
	}
}
