// Command nsr-simulate cross-validates the analytic models by simulation.
//
// Two modes:
//
//	-mode des     discrete-event simulation of the full system (nodes,
//	              drives, concurrent rebuilds, restripes) in a
//	              failure-accelerated regime, against the exact chain;
//	-mode biased  rare-event estimation of the *baseline* chains with
//	              balanced failure biasing, against dense linear algebra.
//
// A third, flag-selected mode simulates an entire fleet at baseline
// rates: -fleet runs the aggregating fleet estimator over -bricks
// storage nodes for -years years (a million-brick decade completes in
// seconds on the calendar-queue engine) and compares the observed
// per-node-set MTTDL against the exact chain.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"

	"repro/internal/closedform"
	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/markov"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/params"
	"repro/internal/rebuild"
	"repro/internal/seedstream"
	"repro/internal/sim"
	"repro/internal/version"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "nsr-simulate:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("nsr-simulate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	mode := fs.String("mode", "des", "validation mode: des or biased")
	trials := fs.Int("trials", 2000, "DES trials / 10× biased cycles")
	seed := fs.Int64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "worker goroutines (0 = all CPUs; 1 = the serial estimator, reproducing earlier releases exactly; >1 uses per-trial seed streams, bit-identical at any worker count)")
	fleet := fs.Bool("fleet", false, "fleet mode: simulate -bricks storage nodes for -years years at baseline rates (overrides -mode)")
	bricks := fs.Int("bricks", 1_000_000, "fleet size in bricks (storage nodes)")
	years := fs.Float64("years", 10, "fleet mission horizon in years")
	engine := fs.String("engine", "calendar", "fleet scheduler engine: calendar or heap (bit-identical results)")
	ft := fs.Int("ft", 1, "fleet config: inter-node fault tolerance")
	internal := fs.String("internal", "none", "fleet config: internal redundancy (none, raid5, raid6)")
	oflags := obs.AddFlags(fs)
	showVersion := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		version.Print(stdout, "nsr-simulate")
		return nil
	}
	if err := core.ValidateWorkers(*workers); err != nil {
		return err
	}
	sess, err := oflags.Start()
	if err != nil {
		return err
	}
	if sess.Registry != nil {
		markov.Instrument(sess.Registry)
		linalg.Instrument(sess.Registry)
		rebuild.Instrument(sess.Registry)
		sess.Registry.SetLabel("seed", strconv.FormatInt(*seed, 10))
		sess.Registry.SetLabel("mode", *mode)
	}
	// The effective seed makes every run reproducible from its logs.
	fmt.Fprintf(stdout, "seed %d\n", *seed)
	ctx, root := sess.Trace(context.Background(), "nsr-simulate")
	var runErr error
	switch {
	case *fleet:
		runErr = runFleet(ctx, stdout, fleetOpts{
			bricks: *bricks, years: *years, engine: *engine,
			ft: *ft, internal: *internal,
			seed: *seed, workers: *workers,
		}, sess)
	case *mode == "des":
		runErr = runDES(ctx, stdout, *trials, *seed, *workers, sess)
	case *mode == "biased":
		runErr = runBiased(stdout, *trials*10, *seed, *workers, sess)
	default:
		runErr = fmt.Errorf("unknown mode %q", *mode)
	}
	root.End()
	if err := sess.Finish(); runErr == nil {
		runErr = err
	}
	return runErr
}

// runDES compares the full-system simulator against exact chain solutions
// in an accelerated-failure regime (the baseline itself is unreachable by
// naive simulation).
//
// workers == 1 runs the original serial estimator (one RNG shared across
// every scenario and trial), byte-for-byte compatible with earlier
// releases. Any other value runs the parallel estimator, whose per-trial
// seed streams make the output identical at every worker count — a
// different (equally valid) sample than the serial path draws.
func runDES(ctx context.Context, stdout io.Writer, trials int, seed int64, workers int, sess *obs.Session) error {
	rng := rand.New(rand.NewSource(seed))
	fmt.Fprintln(stdout, "Full-system DES vs exact Markov chain (accelerated failures)")
	fmt.Fprintln(stdout, "config                         chain MTTDL      DES MTTDL        ratio")
	fmt.Fprintln(stdout, "-----------------------------  ---------------  ---------------  -----")

	type scenario struct {
		name  string
		sc    sim.Scenario
		chain *markov.Chain
	}
	nir := func(t int) scenario {
		sc := sim.Scenario{
			N: 8, R: 4, D: 3, T: t,
			LambdaN: 1e-3, LambdaD: 2e-3, MuN: 2, MuD: 5,
			CHER: 0.01, Repair: sim.RepairExponential,
		}
		in := closedform.NIRInputs{
			N: sc.N, R: sc.R, D: sc.D,
			LambdaN: sc.LambdaN, LambdaD: sc.LambdaD,
			MuN: sc.MuN, MuD: sc.MuD, CHER: sc.CHER,
		}
		return scenario{
			name:  fmt.Sprintf("FT %d, no internal RAID", t),
			sc:    sc,
			chain: model.NIRChain(in, t),
		}
	}
	ir := func() scenario {
		sc := sim.Scenario{
			N: 8, R: 4, D: 4, T: 1, ParityDrives: 1,
			LambdaN: 1e-3, LambdaD: 5e-3, MuN: 2, MuD: 5, MuRestripe: 5,
			CHER: 0.02, Repair: sim.RepairExponential,
		}
		arr := closedform.ArrayInputs{D: sc.D, LambdaD: sc.LambdaD, MuD: sc.MuRestripe, CHER: sc.CHER}
		in := closedform.IRInputs{
			N: sc.N, R: sc.R,
			LambdaN:      sc.LambdaN,
			LambdaArray:  closedform.ArrayFailureRate(1, arr),
			LambdaSector: closedform.SectorErrorRate(1, arr),
			MuN:          sc.MuN,
		}
		return scenario{name: "FT 1, internal RAID 5", sc: sc, chain: model.IRChain(in, 1)}
	}
	scenarios := []scenario{nir(1), nir(2), ir()}
	var m *sim.Metrics
	if sess.Registry != nil {
		m = sim.NewMetrics(sess.Registry)
	}
	status := func() string {
		if m == nil {
			return ""
		}
		return fmt.Sprintf("%d loss events, %d sim events", m.Missions.Value(), m.Events.Value())
	}
	progress := sess.Progress("missions", int64(trials*len(scenarios)), status)
	ob := sim.Observer{
		Metrics: m,
		Hook:    sess.Hook(),
		OnMission: func(int, sim.LossResult) {
			obs.ProgressAdd(progress, 1)
		},
	}
	for si, s := range scenarios {
		want, err := markov.MTTA(s.chain)
		if err != nil {
			obs.ProgressStop(progress)
			return err
		}
		var est sim.Estimate
		if workers == 1 {
			est, err = sim.EstimateMTTDLObserved(s.sc, rng, trials, 10_000_000, ob)
		} else {
			// Each scenario gets its own base seed from the stream, so
			// any scenario's run can be reproduced in isolation.
			est, err = sim.EstimateMTTDLParallelObservedCtx(
				ctx, s.sc, seedstream.Derive(seed, uint64(si)), trials, 10_000_000, workers, ob)
		}
		if err != nil {
			obs.ProgressStop(progress)
			return err
		}
		fmt.Fprintf(stdout, "%-29s  %-15.6g  %7.6g ± %-4.2g  %.3f\n",
			s.name, want, est.MeanHours, 1.96*est.StdErr, est.MeanHours/want)
	}
	obs.ProgressStop(progress)
	fmt.Fprintln(stdout, "\nratios near 1 validate the chains; FT 2 ratios above 1 quantify the")
	fmt.Fprintln(stdout, "chains' conservative last-in-first-out repair assumption.")
	return nil
}

// runBiased estimates the baseline chains' MTTDL by balanced failure
// biasing and compares with the dense linear-algebra solution. Worker
// semantics match runDES: 1 = legacy serial sample, otherwise the
// worker-count-independent parallel estimator.
func runBiased(stdout io.Writer, cycles int, seed int64, workers int, sess *obs.Session) error {
	rng := rand.New(rand.NewSource(seed))
	p := params.Baseline()
	fmt.Fprintln(stdout, "Balanced-failure-biasing estimator vs dense LU solution (baseline chains)")
	fmt.Fprintln(stdout, "config                   exact MTTDL (h)  biased estimate (h)    rel CI")
	fmt.Fprintln(stdout, "-----------------------  ---------------  ---------------------  ------")
	configs := core.SensitivityConfigs()
	progress := sess.Progress("configs", int64(len(configs)), nil)
	defer obs.ProgressStop(progress)
	for ci, cfg := range configs {
		ch, err := buildChain(p, cfg)
		if err != nil {
			return err
		}
		want, err := markov.MTTA(ch)
		if err != nil {
			return err
		}
		var est sim.BiasedEstimate
		if workers == 1 {
			est, err = sim.EstimateMTTABiased(ch, rng, cycles, 0.5, sim.RepairThreshold(ch))
		} else {
			est, err = sim.EstimateMTTABiasedParallel(
				ch, seedstream.Derive(seed, uint64(ci)), cycles, 0.5, sim.RepairThreshold(ch), workers)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%-23s  %-15.6g  %9.6g ± %-8.2g  %.1f%%\n",
			cfg, want, est.MTTA, 1.96*est.StdErr, 100*est.RelHalfWidth95())
		obs.ProgressAdd(progress, 1)
	}
	return nil
}

// fleetOpts bundles the -fleet flag group.
type fleetOpts struct {
	bricks   int
	years    float64
	engine   string
	ft       int
	internal string
	seed     int64
	workers  int
}

// runFleet simulates the whole fleet at baseline rates with the
// aggregating estimator and compares the observed per-node-set MTTDL
// against the exact chain's MTTA.
func runFleet(ctx context.Context, stdout io.Writer, o fleetOpts, sess *obs.Session) error {
	engine, err := sim.ParseEngine(o.engine)
	if err != nil {
		return err
	}
	var ir core.InternalRedundancy
	switch o.internal {
	case "none":
		ir = core.InternalNone
	case "raid5":
		ir = core.InternalRAID5
	case "raid6":
		ir = core.InternalRAID6
	default:
		return fmt.Errorf("unknown internal redundancy %q (valid: none, raid5, raid6)", o.internal)
	}
	p := params.Baseline()
	cfg := core.Config{Internal: ir, NodeFaultTolerance: o.ft}
	if err := cfg.Validate(); err != nil {
		return err
	}
	sc, err := sim.ScenarioFromConfig(p, cfg, sim.RepairExponential)
	if err != nil {
		return err
	}
	var m *sim.FleetMetrics
	if sess.Registry != nil {
		m = sim.NewFleetMetrics(sess.Registry)
	}
	horizon := o.years * params.HoursPerYear
	fmt.Fprintf(stdout, "Fleet DES: %d bricks, %g years, config %s, engine %s\n",
		o.bricks, o.years, cfg, engine)
	est, err := sim.EstimateFleetObservedCtx(ctx, sc, o.bricks, horizon, o.seed, o.workers,
		0, engine, m)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "node sets        %d (N = %d bricks each)\n", est.NodeSets, sc.N)
	fmt.Fprintf(stdout, "events           %d\n", est.Events)
	fmt.Fprintf(stdout, "splits / merges  %d / %d (peak live records %d)\n", est.Splits, est.Merges, est.PeakLiveRecords)
	fmt.Fprintf(stdout, "data losses      %d", est.Losses)
	for c := sim.LossNone; c <= sim.LossRestripeUE; c++ {
		if n := est.CauseCount(c); n > 0 {
			fmt.Fprintf(stdout, "  %s=%d", c, n)
		}
	}
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "loss rate        %.6g / brick-year (± %.2g)\n", est.LossesPerBrickYear, 1.96*est.StdErr)
	ch, err := buildChain(p, cfg)
	if err != nil {
		return err
	}
	want, err := markov.MTTA(ch)
	if err != nil {
		return err
	}
	if est.Losses > 0 {
		fmt.Fprintf(stdout, "per-set MTTDL    %.6g h observed vs %.6g h chain (ratio %.3f)\n",
			est.MTTDLHours, want, est.MTTDLHours/want)
	} else {
		fmt.Fprintf(stdout, "per-set MTTDL    no losses observed (chain MTTA %.6g h)\n", want)
	}
	return nil
}

func buildChain(p params.Parameters, cfg core.Config) (*markov.Chain, error) {
	rates := rebuild.Compute(p, cfg.NodeFaultTolerance)
	if cfg.Internal == core.InternalNone {
		in := closedform.NIRInputs{
			N: p.NodeSetSize, R: p.RedundancySetSize, D: p.DrivesPerNode,
			LambdaN: p.NodeFailureRate(), LambdaD: p.DriveFailureRate(),
			MuN: rates.NodeRebuild, MuD: rates.DriveRebuild, CHER: p.CHER(),
		}
		return model.NIRChain(in, cfg.NodeFaultTolerance), nil
	}
	m := cfg.Internal.ParityDrives()
	arr := closedform.ArrayInputs{
		D: p.DrivesPerNode, LambdaD: p.DriveFailureRate(),
		MuD: rates.Restripe, CHER: p.CHER(),
	}
	in := closedform.IRInputs{
		N: p.NodeSetSize, R: p.RedundancySetSize,
		LambdaN:      p.NodeFailureRate(),
		LambdaArray:  closedform.ArrayFailureRate(m, arr),
		LambdaSector: closedform.SectorErrorRate(m, arr),
		MuN:          rates.NodeRebuild,
	}
	return model.IRChain(in, cfg.NodeFaultTolerance), nil
}
