package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDESSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-mode", "des", "-trials", "20", "-seed", "3"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v (stderr %q)", err, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "seed 3") {
		t.Errorf("effective seed not echoed:\n%s", out)
	}
	for _, cfg := range []string{"FT 1, no internal RAID", "FT 2, no internal RAID", "FT 1, internal RAID 5"} {
		if !strings.Contains(out, cfg) {
			t.Errorf("scenario %q missing:\n%s", cfg, out)
		}
	}
}

func TestRunDESDeterministicAcrossWorkerCounts(t *testing.T) {
	outs := make([]string, 2)
	for i, w := range []string{"2", "4"} {
		var stdout, stderr bytes.Buffer
		if err := run([]string{"-mode", "des", "-trials", "20", "-seed", "9", "-workers", w}, &stdout, &stderr); err != nil {
			t.Fatalf("workers %s: %v", w, err)
		}
		outs[i] = stdout.String()
	}
	if outs[0] != outs[1] {
		t.Errorf("output differs between worker counts:\n%s\nvs\n%s", outs[0], outs[1])
	}
}

func TestRunRejectsBadMode(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-mode", "quantum"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "unknown mode") {
		t.Errorf("run -mode quantum = %v, want unknown-mode error", err)
	}
}

func TestRunRejectsNegativeWorkers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-workers", "-2"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "negative") {
		t.Errorf("run -workers -2 = %v, want a negative-workers error", err)
	}
}

func TestRunFleetSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-fleet", "-bricks", "20000", "-years", "1", "-seed", "5"}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v (stderr %q)", err, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"seed 5", "Fleet DES: 20000 bricks", "engine calendar",
		"node sets", "data losses", "per-set MTTDL"} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet output missing %q:\n%s", want, out)
		}
	}

	// The heap engine must print the identical report (bit-identical
	// estimates are the cross-engine contract).
	var heap bytes.Buffer
	if err := run(append(args, "-engine", "heap"), &heap, &stderr); err != nil {
		t.Fatalf("heap run: %v", err)
	}
	if got := strings.ReplaceAll(heap.String(), "engine heap", "engine calendar"); got != out {
		t.Errorf("heap engine output differs:\n%s\nvs\n%s", heap.String(), out)
	}
}

func TestRunFleetRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-fleet", "-engine", "wheel"},
		{"-fleet", "-internal", "raid7"},
		{"-fleet", "-ft", "0"},
		{"-fleet", "-bricks", "0"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if err := run(args, &stdout, &stderr); err == nil {
			t.Errorf("run %v accepted", args)
		}
	}
}
