package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// notifyWriter is a threadsafe buffer that signals once its contents
// match a predicate — how the test learns the ephemeral port from the
// "listening on" line.
type notifyWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
	c   chan struct{}
}

func newNotifyWriter() *notifyWriter { return &notifyWriter{c: make(chan struct{}, 1)} }

func (w *notifyWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n, err := w.buf.Write(p)
	select {
	case w.c <- struct{}{}:
	default:
	}
	return n, err
}

func (w *notifyWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// waitForAddr blocks until the listening line appears and returns the
// host:port it announces.
func (w *notifyWriter) waitForAddr(t *testing.T) string {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		if s := w.String(); strings.Contains(s, "listening on ") {
			line := s[strings.Index(s, "listening on ")+len("listening on "):]
			return strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
		}
		select {
		case <-w.c:
		case <-deadline:
			t.Fatalf("server never announced its address; stdout %q", w.String())
		}
	}
}

// TestRunEndToEnd boots the real server on an ephemeral port, exercises
// the health probe and an analysis round-trip over actual TCP, then
// delivers SIGTERM and expects a clean, draining exit — the same
// life-cycle the CI e2e job drives from the outside.
func TestRunEndToEnd(t *testing.T) {
	stdout := newNotifyWriter()
	var stderr bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-drain", "5s"}, stdout, &stderr)
	}()
	addr := stdout.waitForAddr(t)
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}
	var hz struct {
		Version string `json:"version"`
		Go      string `json:"go"`
	}
	if err := json.Unmarshal(body, &hz); err != nil || hz.Version == "" || hz.Go == "" {
		t.Fatalf("healthz missing build identity: %v %s", err, body)
	}

	resp, err = http.Post(base+"/v1/analyze", "application/json",
		strings.NewReader(`{"config":{"internal":"raid5","ft":2}}`))
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %d %s", resp.StatusCode, body)
	}
	var ar struct {
		MTTDLHours float64 `json:"mttdl_hours"`
	}
	if err := json.Unmarshal(body, &ar); err != nil || ar.MTTDLHours <= 0 {
		t.Fatalf("analyze body implausible: %v %s", err, body)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	// Default exposition is Prometheus text with sanitized names.
	if !strings.Contains(string(body), "serve_requests_analyze") {
		t.Fatalf("metrics missing serve counters: %s", body)
	}
	resp, err = http.Get(base + "/metrics?format=json")
	if err != nil {
		t.Fatalf("metrics json: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "serve.requests.analyze") {
		t.Fatalf("json metrics missing serve counters: %s", body)
	}

	// The graceful path: SIGTERM → drain → run returns nil. The signal
	// goes to our own process; run's NotifyContext absorbs it.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run after SIGTERM = %v, want nil (stderr %q)", err, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit within 10s of SIGTERM")
	}
	if out := stdout.String(); !strings.Contains(out, "shutting down") {
		t.Errorf("no shutdown announcement in stdout: %q", out)
	}
}

func TestRunVersion(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-version"}, &stdout, &stderr); err != nil {
		t.Fatalf("run -version = %v", err)
	}
	if !strings.Contains(stdout.String(), "nsr-serve") {
		t.Errorf("version output missing command name: %q", stdout.String())
	}
}

func TestRunRejectsNegativeWorkers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-workers", "-4"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "negative") {
		t.Errorf("run -workers -4 = %v, want a negative-workers error", err)
	}
}

func TestRunRejectsBadAddr(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-addr", "not-an-address:-1"}, &stdout, &stderr); err == nil {
		t.Error("run accepted an unparseable address")
	}
}

func TestRunUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-h"}, &stdout, &stderr); err == nil {
		t.Error("run -h returned nil")
	}
	for _, flagName := range []string{"-addr", "-workers", "-cache", "-drain"} {
		if !strings.Contains(stderr.String(), flagName) {
			t.Errorf("usage missing %s", flagName)
		}
	}
}
