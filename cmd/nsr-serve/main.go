// Command nsr-serve runs the reliability analysis service: a cached,
// cancellable HTTP JSON API over the analysis engine, the exact Markov
// solvers and the deterministic Monte Carlo estimators.
//
// Usage:
//
//	nsr-serve [-addr :8080] [-workers 0] [-cache 256] [-drain 10s]
//	          [-grid-cells 4096] [-sim-trials 20000] [-max-body 1048576]
//
// Endpoints: POST /v1/analyze, /v1/sweep, /v1/simulate;
// GET /healthz, /metrics. SIGINT/SIGTERM drain in-flight requests for
// -drain, then cancel whatever is left; a clean drain exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "nsr-serve:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("nsr-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	workers := fs.Int("workers", 0, "concurrent solves and per-solve worker ceiling (0 = all CPUs)")
	cacheN := fs.Int("cache", 256, "result cache capacity (completed responses)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain window before in-flight solves are cancelled")
	gridCells := fs.Int("grid-cells", 4096, "maximum sweep grid cells (values × configs)")
	simTrials := fs.Int("sim-trials", 20_000, "maximum trials per simulate request")
	maxBody := fs.Int64("max-body", 1<<20, "maximum request body bytes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := core.ValidateWorkers(*workers); err != nil {
		return err
	}
	core.SetMaxWorkers(*workers)

	srv := serve.New(serve.Options{
		CacheEntries: *cacheN,
		MaxBodyBytes: *maxBody,
		MaxGridCells: *gridCells,
		MaxSimTrials: *simTrials,
	})
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The effective address line is machine-readable on purpose: with
	// -addr :0 it is how tests and the e2e harness find the port.
	fmt.Fprintf(stdout, "nsr-serve: listening on %s\n", l.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop() // restore default signal behavior: a second signal kills
		fmt.Fprintf(stdout, "nsr-serve: shutting down (drain %s)\n", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return fmt.Errorf("drain incomplete: %w", err)
		}
		return <-errc
	}
}
