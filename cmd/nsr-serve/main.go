// Command nsr-serve runs the reliability analysis service: a cached,
// cancellable HTTP JSON API over the analysis engine, the exact Markov
// solvers and the deterministic Monte Carlo estimators.
//
// Usage:
//
//	nsr-serve [-addr :8080] [-workers 0] [-batch-cells 0] [-cache 256]
//	          [-drain 10s] [-grid-cells 4096] [-sim-trials 20000]
//	          [-max-fleet-brick-years 2e7] [-max-body 1048576]
//	          [-access-log FILE] [-slow 1s] [-trace-out FILE]
//	          [-pprof-http host:port] [-version]
//
// Endpoints: POST /v1/analyze, /v1/sweep, /v1/simulate;
// GET /healthz, /metrics (Prometheus text by default; ?format=json).
// POST /v1/sweep with "Accept: application/x-ndjson" streams completed
// sweep points as NDJSON rows instead of buffering the whole grid.
// SIGINT/SIGTERM drain in-flight requests for -drain, then cancel
// whatever is left; a clean drain exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/version"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "nsr-serve:", err)
		os.Exit(1)
	}
}

// openSink resolves a log-ish path flag: "" is nil (disabled), "-" is
// stdout, anything else appends to the named file.
func openSink(path string, stdout io.Writer) (io.Writer, func() error, error) {
	switch path {
	case "":
		return nil, func() error { return nil }, nil
	case "-":
		return stdout, func() error { return nil }, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("nsr-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	workers := fs.Int("workers", 0, "concurrent solves and per-solve worker ceiling (0 = all CPUs)")
	batchCells := fs.Int("batch-cells", 0, "cells per batched exact-chain solver chunk (0 = default 256, negative = per-cell path; results are identical at any setting)")
	cacheN := fs.Int("cache", 256, "result cache capacity (completed responses)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain window before in-flight solves are cancelled")
	gridCells := fs.Int("grid-cells", 4096, "maximum sweep grid cells (values × configs)")
	simTrials := fs.Int("sim-trials", 20_000, "maximum trials per simulate request")
	fleetBY := fs.Float64("max-fleet-brick-years", 0, "maximum bricks × years per fleet simulate request (0 = default 2e7)")
	maxBody := fs.Int64("max-body", 1<<20, "maximum request body bytes")
	accessLog := fs.String("access-log", "", "append JSONL access-log lines to this file (\"-\" = stdout)")
	slow := fs.Duration("slow", time.Second, "mark requests at or above this duration as slow (negative disables)")
	traceOut := fs.String("trace-out", "", "append every compute request's span tree to this file as JSONL (\"-\" = stdout)")
	pprofHTTP := fs.String("pprof-http", "", "serve net/http/pprof on this host:port (off by default)")
	showVersion := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		version.Print(stdout, "nsr-serve")
		return nil
	}
	if err := core.ValidateWorkers(*workers); err != nil {
		return err
	}
	core.SetMaxWorkers(*workers)
	core.SetBatchCells(*batchCells)

	accessW, closeAccess, err := openSink(*accessLog, stdout)
	if err != nil {
		return err
	}
	defer closeAccess() //nolint:errcheck // close errors lose to run errors
	traceW, closeTrace, err := openSink(*traceOut, stdout)
	if err != nil {
		return err
	}
	defer closeTrace() //nolint:errcheck // close errors lose to run errors
	if *pprofHTTP != "" {
		if _, _, err := net.SplitHostPort(*pprofHTTP); err != nil {
			return fmt.Errorf("-pprof-http wants host:port: %w", err)
		}
		stopProf, err := obs.StartPProf(*pprofHTTP)
		if err != nil {
			return err
		}
		defer stopProf() //nolint:errcheck // close errors lose to run errors
		fmt.Fprintf(stdout, "nsr-serve: pprof on %s\n", *pprofHTTP)
	}

	srv := serve.New(serve.Options{
		CacheEntries:       *cacheN,
		MaxBodyBytes:       *maxBody,
		MaxGridCells:       *gridCells,
		MaxSimTrials:       *simTrials,
		MaxFleetBrickYears: *fleetBY,
		AccessLog:          accessW,
		SlowThreshold:      *slow,
		TraceWriter:        traceW,
	})
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The effective address line is machine-readable on purpose: with
	// -addr :0 it is how tests and the e2e harness find the port.
	fmt.Fprintf(stdout, "nsr-serve: listening on %s\n", l.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop() // restore default signal behavior: a second signal kills
		fmt.Fprintf(stdout, "nsr-serve: shutting down (drain %s)\n", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			return fmt.Errorf("drain incomplete: %w", err)
		}
		return <-errc
	}
}
