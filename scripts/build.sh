#!/usr/bin/env bash
# Build every CLI into ./bin with the build identity stamped via
# -ldflags (see internal/version). Override the tag with VERSION=v1.2.3.
set -euo pipefail

cd "$(dirname "$0")/.."

version=${VERSION:-$(git describe --tags --always --dirty 2>/dev/null || echo dev)}
commit=$(git rev-parse --short HEAD 2>/dev/null || echo "")
date=$(date -u +%Y-%m-%dT%H:%M:%SZ)

ldflags="-X repro/internal/version.Version=${version}"
[ -n "$commit" ] && ldflags="$ldflags -X repro/internal/version.Commit=${commit}"
ldflags="$ldflags -X repro/internal/version.Date=${date}"

mkdir -p bin
for cmd in cmd/*/; do
    name=$(basename "$cmd")
    go build -ldflags "$ldflags" -o "bin/$name" "./$cmd"
done
echo "built $(ls bin | wc -l) binaries into bin/ as ${version} (${commit:-no commit}, ${date})"
./bin/nsr-mttdl -version
