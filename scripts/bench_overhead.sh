#!/usr/bin/env bash
# Observability overhead gate: the instrumented DES hot loop (live
# registry + per-mission metric flushes, the exact shape nsr-serve and
# nsr-simulate run) must stay within MAX_RATIO of the uninstrumented
# baseline. Each benchmark runs COUNT times and the best (minimum) ns/op
# is compared, which filters scheduler noise rather than averaging it in.
set -euo pipefail

cd "$(dirname "$0")/.."

MAX_RATIO=${MAX_RATIO:-1.05}
COUNT=${COUNT:-6}
BENCHTIME=${BENCHTIME:-0.5s}

out=$(go test -run NOTHING -bench 'DESBaseline|DESInstrumented' \
    -benchtime "$BENCHTIME" -count "$COUNT" .)
echo "$out"

best() {
    echo "$out" | awk -v name="$1" '
        $1 ~ name { for (i = 1; i <= NF; i++) if ($(i+1) == "ns/op") v = $i
                    if (best == "" || v + 0 < best + 0) best = v }
        END { if (best == "") exit 1; print best }'
}

base=$(best '^BenchmarkDESBaseline')
inst=$(best '^BenchmarkDESInstrumented')
ratio=$(awk -v b="$base" -v i="$inst" 'BEGIN { printf "%.4f", i / b }')
echo "baseline ${base} ns/op, instrumented ${inst} ns/op, ratio ${ratio} (max ${MAX_RATIO})"
awk -v r="$ratio" -v m="$MAX_RATIO" 'BEGIN { exit !(r <= m) }' || {
    echo "instrumentation overhead ${ratio}x exceeds the ${MAX_RATIO}x gate"
    exit 1
}
echo "overhead gate OK"
