#!/usr/bin/env bash
# End-to-end check of nsr-serve from outside the process: boot on a
# random port, probe /healthz, run one /v1/analyze round-trip, then
# SIGTERM and require a clean (exit 0) graceful shutdown.
set -euo pipefail

cd "$(dirname "$0")/.."

bin=$(mktemp -d)/nsr-serve
out=$(mktemp)
trap 'rm -rf "$(dirname "$bin")" "$out"' EXIT

# Stamp the build identity so the /healthz and -version probes below
# check the real ldflags path, not just the "dev" fallback.
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
go build -ldflags "-X repro/internal/version.Version=e2e -X repro/internal/version.Commit=${commit}" \
    -o "$bin" ./cmd/nsr-serve

"$bin" -version | grep -q 'nsr-serve e2e' || { echo "-version not stamped"; "$bin" -version; exit 1; }

"$bin" -addr 127.0.0.1:0 >"$out" 2>&1 &
pid=$!

# The first stdout line announces the bound address.
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^nsr-serve: listening on //p' "$out" | head -n1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "server died early:"; cat "$out"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "server never announced its address"; cat "$out"; exit 1; }
echo "serving on $addr"

healthz=$(curl -fsS "http://$addr/healthz")
echo "$healthz" | grep -q '"ok"' || { echo "healthz failed: $healthz"; exit 1; }
echo "$healthz" | grep -q '"version":"e2e"' || { echo "healthz missing stamped version: $healthz"; exit 1; }

body=$(curl -fsS -X POST "http://$addr/v1/analyze" \
    -H 'Content-Type: application/json' \
    -d '{"config":{"internal":"raid5","ft":2}}')
echo "$body" | grep -q '"mttdl_hours"' || { echo "analyze failed: $body"; exit 1; }

# A repeat of the same request must be a cache hit.
curl -fsS -X POST "http://$addr/v1/analyze" \
    -H 'Content-Type: application/json' \
    -d '{"config":{"internal":"raid5","ft":2}}' >/dev/null
hits=$(curl -fsS "http://$addr/metrics?format=text" | awk '$1 == "counter" && $2 == "serve.cache.hits" {print $3}')
[ "${hits:-0}" -ge 1 ] || { echo "expected a cache hit, counter is ${hits:-absent}"; exit 1; }

# Default /metrics is Prometheus text exposition: sanitized names, TYPE
# comments, and the same cache-hit count.
prom=$(curl -fsS "http://$addr/metrics")
echo "$prom" | grep -q '^# TYPE serve_cache_hits counter$' || { echo "no Prometheus TYPE line"; exit 1; }
prom_hits=$(echo "$prom" | awk '$1 == "serve_cache_hits" {print $2}')
[ "${prom_hits:-0}" -ge 1 ] || { echo "Prometheus cache hits ${prom_hits:-absent}"; exit 1; }

kill -TERM "$pid"
if wait "$pid"; then
    echo "graceful shutdown: exit 0"
else
    status=$?
    echo "shutdown exited $status:"; cat "$out"; exit "$status"
fi
grep -q "shutting down" "$out" || { echo "no drain announcement"; cat "$out"; exit 1; }
echo "e2e OK"
